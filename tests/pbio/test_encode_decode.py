"""Encode/decode roundtrips, including full cross-architecture matrix."""

import itertools

import pytest

from repro.arch import SPARC_32, X86_32, X86_64
from repro.errors import DecodeError, EncodeError
from repro.pbio import IOContext, IOField
from repro.pbio.encode import get_encode_plan

from tests.pbio.conftest import ALL_ARCHES, ASDOFF_RECORD, register_asdoff


def roundtrip(sender_arch, receiver_arch, register, record, **decode_kwargs):
    sender = IOContext(sender_arch)
    fmt = register(sender)
    message = sender.encode(fmt, record)
    receiver = IOContext(receiver_arch)
    receiver.learn_format(fmt.to_wire_metadata())
    return receiver.decode(message, **decode_kwargs).values


class TestPaperStructureRoundtrip:
    @pytest.mark.parametrize(
        "pair",
        list(itertools.product(ALL_ARCHES, ALL_ARCHES)),
        ids=lambda pair: f"{pair[0].name}->{pair[1].name}",
    )
    def test_full_architecture_matrix(self, pair):
        sender_arch, receiver_arch = pair
        values = roundtrip(sender_arch, receiver_arch, register_asdoff, ASDOFF_RECORD)
        assert values == ASDOFF_RECORD

    def test_interpreted_mode_matches(self, any_arch):
        values = roundtrip(
            any_arch, X86_64, register_asdoff, ASDOFF_RECORD, mode="interpreted"
        )
        assert values == ASDOFF_RECORD


class TestValueShapes:
    def _scalar_format(self, ctx):
        return ctx.register_format(
            "scalars",
            [
                IOField("i8", "integer", 1, 0),
                IOField("i16", "integer", 2, 2),
                IOField("i32", "integer", 4, 4),
                IOField("i64", "integer", 8, 8),
                IOField("u32", "unsigned integer", 4, 16),
                IOField("f32", "float", 4, 20),
                IOField("f64", "double", 8, 24),
                IOField("c", "char", 1, 32),
                IOField("b", "boolean", 1, 33),
                IOField("e", "enumeration", 4, 36),
            ],
            record_length=40,
        )

    def test_all_scalar_kinds_roundtrip(self, any_arch):
        record = {
            "i8": -5, "i16": -30000, "i32": -(2**31) + 1, "i64": -(2**62),
            "u32": 4_000_000_000, "f32": 0.5, "f64": 3.141592653589793,
            "c": "Q", "b": True, "e": 7,
        }
        values = roundtrip(any_arch, SPARC_32, self._scalar_format, record)
        assert values == record

    def test_null_string_roundtrips_as_none(self, any_arch):
        def register(ctx):
            return ctx.register_format(
                "s", [IOField("name", "string", ctx.arch.pointer_size, 0)]
            )

        assert roundtrip(any_arch, X86_64, register, {"name": None}) == {"name": None}

    def test_empty_string_distinct_from_null(self):
        def register(ctx):
            return ctx.register_format(
                "s", [IOField("name", "string", ctx.arch.pointer_size, 0)]
            )

        assert roundtrip(SPARC_32, X86_64, register, {"name": ""}) == {"name": ""}

    def test_unicode_string_roundtrips(self):
        def register(ctx):
            return ctx.register_format(
                "s", [IOField("name", "string", ctx.arch.pointer_size, 0)]
            )

        record = {"name": "Zürich ✈ Tōkyō"}
        assert roundtrip(SPARC_32, X86_32, register, record) == record

    def test_static_string_array(self):
        def register(ctx):
            p = ctx.arch.pointer_size
            return ctx.register_format(
                "s",
                [IOField("names", "string[3]", p, 0), IOField("n", "integer", 4, 3 * p)],
            )

        record = {"names": ["a", None, "ccc"], "n": 9}
        assert roundtrip(SPARC_32, X86_64, register, record) == record

    def test_char_array_as_fixed_string_buffer(self):
        def register(ctx):
            return ctx.register_format(
                "s",
                [IOField("tag", "char[8]", 1, 0), IOField("n", "integer", 4, 8)],
            )

        values = roundtrip(SPARC_32, X86_64, register, {"tag": "ATL", "n": 1})
        assert values == {"tag": "ATL", "n": 1}

    def test_empty_dynamic_array(self):
        def register(ctx):
            return ctx.register_format(
                "s",
                [
                    IOField("n", "integer", 4, 0),
                    IOField("data", "double[n]", 8, ctx.arch.pointer_size),
                ],
                record_length=2 * max(ctx.arch.pointer_size, 8),
            )

        values = roundtrip(SPARC_32, X86_64, register, {"data": [], "n": 0})
        assert values["data"] == []
        assert values["n"] == 0

    def test_count_field_derived_when_omitted(self):
        def register(ctx):
            return ctx.register_format(
                "s",
                [
                    IOField("n", "integer", 4, 0),
                    IOField("data", "double[n]", 8, 8),
                ],
                record_length=16,
            )

        values = roundtrip(SPARC_32, X86_64, register, {"data": [1.5, 2.5]})
        assert values["n"] == 2
        assert values["data"] == [1.5, 2.5]

    def test_float_dynamic_array_roundtrip(self):
        def register(ctx):
            return ctx.register_format(
                "s",
                [
                    IOField("n", "integer", 4, 0),
                    IOField("data", "float[n]", 4, 8),
                ],
                record_length=16,
            )

        record = {"n": 4, "data": [0.25, 0.5, 0.75, 1.0]}
        assert roundtrip(X86_32, SPARC_32, register, record) == record


class TestNesting:
    def _register_nested(self, ctx):
        point = ctx.register_format(
            "point",
            [IOField("x", "double", 8, 0), IOField("y", "double", 8, 8)],
        )
        return ctx.register_format(
            "segment",
            [
                IOField("label", "string", ctx.arch.pointer_size, 0),
                IOField("a", "point", 16, 8),
                IOField("b", "point", 16, 24),
            ],
            record_length=40,
        )

    def test_nested_format_roundtrip(self):
        record = {
            "label": "runway",
            "a": {"x": 1.0, "y": 2.0},
            "b": {"x": 3.0, "y": 4.0},
        }
        assert roundtrip(SPARC_32, X86_64, self._register_nested, record) == record

    def test_static_array_of_nested_formats(self):
        def register(ctx):
            point = ctx.register_format(
                "point",
                [IOField("x", "double", 8, 0), IOField("y", "double", 8, 8)],
            )
            return ctx.register_format(
                "poly", [IOField("pts", "point[3]", 16, 0)], record_length=48
            )

        record = {"pts": [{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}, {"x": 5.0, "y": 6.0}]}
        assert roundtrip(X86_64, SPARC_32, register, record) == record

    def test_nested_with_strings_shares_variable_section(self):
        def register(ctx):
            p = ctx.arch.pointer_size
            inner = ctx.register_format(
                "named", [IOField("name", "string", p, 0), IOField("v", "integer", 4, p)]
            )
            return ctx.register_format(
                "pair",
                [
                    IOField("first", "named", inner.record_length, 0),
                    IOField("second", "named", inner.record_length, inner.record_length),
                ],
            )

        record = {
            "first": {"name": "alpha", "v": 1},
            "second": {"name": "beta", "v": 2},
        }
        assert roundtrip(SPARC_32, X86_64, register, record) == record


class TestEncodeErrors:
    def _fmt(self, ctx):
        return ctx.register_format(
            "s",
            [
                IOField("n", "integer", 4, 0),
                IOField("name", "string", ctx.arch.pointer_size, ctx.arch.pointer_size),
                IOField("data", "double[n]", 8, 2 * ctx.arch.pointer_size),
            ],
            record_length=3 * max(ctx.arch.pointer_size, 4) + 8,
        )

    def test_missing_field_rejected(self, x86_context):
        fmt = self._fmt(x86_context)
        with pytest.raises(EncodeError, match="missing field"):
            x86_context.encode(fmt, {"n": 0, "data": []})

    def test_type_mismatch_rejected(self, x86_context):
        fmt = self._fmt(x86_context)
        with pytest.raises(EncodeError, match="expects a string"):
            x86_context.encode(fmt, {"name": 42, "data": [], "n": 0})

    def test_inconsistent_count_rejected(self, x86_context):
        fmt = self._fmt(x86_context)
        with pytest.raises(EncodeError, match="count field"):
            x86_context.encode(fmt, {"name": "x", "data": [1.0, 2.0], "n": 5})

    def test_non_sequence_for_array_rejected(self, x86_context):
        fmt = self._fmt(x86_context)
        with pytest.raises(EncodeError, match="expects a sequence"):
            x86_context.encode(fmt, {"name": "x", "data": 3.0, "n": 1})

    def test_out_of_range_scalar_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 2, 0)])
        with pytest.raises(EncodeError):
            x86_context.encode(fmt, {"v": 2**40})

    def test_wrong_static_array_length_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer[3]", 4, 0)])
        with pytest.raises(EncodeError, match="exactly 3"):
            x86_context.encode(fmt, {"v": [1, 2]})

    def test_shared_count_field_consistency_enforced(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [
                IOField("n", "integer", 4, 0),
                IOField("a", "integer[n]", 4, 8),
                IOField("b", "integer[n]", 4, 16),
            ],
            record_length=24,
        )
        with pytest.raises(EncodeError, match="differing lengths"):
            x86_context.encode(fmt, {"a": [1], "b": [1, 2]})
        message = x86_context.encode(fmt, {"a": [1, 2], "b": [3, 4]})
        assert x86_context.decode(message).values["b"] == [3, 4]


class TestDecodeErrors:
    def test_truncated_message_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        message = x86_context.encode(fmt, {"v": 1})
        with pytest.raises(DecodeError, match="truncated"):
            x86_context.decode(message[:-2])

    def test_short_header_rejected(self, x86_context):
        with pytest.raises(DecodeError, match="header"):
            x86_context.decode(b"\x01\x01")

    def test_unknown_format_id_rejected(self, x86_context, sparc_context):
        fmt = sparc_context.register_format("t", [IOField("v", "integer", 4, 0)])
        message = sparc_context.encode(fmt, {"v": 1})
        with pytest.raises(DecodeError, match="unknown format id"):
            x86_context.decode(message)

    def test_non_data_message_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(DecodeError, match="data message"):
            x86_context.decode(x86_context.format_message(fmt))

    def test_bad_protocol_version_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        message = bytearray(x86_context.encode(fmt, {"v": 1}))
        message[1] = 99
        with pytest.raises(DecodeError, match="version"):
            x86_context.decode(bytes(message))


class TestEncodedLayout:
    """White-box checks of the NDR payload layout."""

    def test_base_record_is_native_bytes(self):
        ctx = IOContext(SPARC_32)
        fmt = ctx.register_format(
            "t", [IOField("a", "integer", 4, 0), IOField("b", "integer", 4, 4)]
        )
        message = ctx.encode(fmt, {"a": 1, "b": 2})
        payload = message[16:]
        assert payload == b"\x00\x00\x00\x01\x00\x00\x00\x02"

    def test_little_endian_base_record(self):
        ctx = IOContext(X86_32)
        fmt = ctx.register_format("t", [IOField("a", "integer", 4, 0)])
        assert ctx.encode(fmt, {"a": 1})[16:] == b"\x01\x00\x00\x00"

    def test_compiler_padding_present_in_payload(self):
        ctx = IOContext(X86_64)
        fmt = ctx.register_format(
            "t",
            [IOField("c", "char", 1, 0), IOField("d", "double", 8, 8)],
            record_length=16,
        )
        payload = ctx.encode(fmt, {"c": "A", "d": 1.0})[16:]
        assert len(payload) == 16
        assert payload[0:1] == b"A"
        assert payload[1:8] == b"\x00" * 7  # the alignment hole travels

    def test_string_offset_points_into_variable_section(self):
        ctx = IOContext(SPARC_32)
        fmt = ctx.register_format(
            "t", [IOField("s", "string", 4, 0)], record_length=4
        )
        payload = ctx.encode(fmt, {"s": "hi"})[16:]
        offset = int.from_bytes(payload[0:4], "big")
        assert offset == 4  # directly after the base record
        assert payload[offset : offset + 3] == b"hi\x00"

    def test_variable_items_are_aligned(self):
        ctx = IOContext(SPARC_32)
        fmt = ctx.register_format(
            "t",
            [
                IOField("s", "string", 4, 0),
                IOField("n", "integer", 4, 4),
                IOField("data", "double[n]", 8, 8),
            ],
            record_length=12,
        )
        payload = ctx.encode(fmt, {"s": "x", "data": [1.0]})[16:]
        array_offset = int.from_bytes(payload[8:12], "big")
        assert array_offset % 8 == 0

    def test_encode_plan_cached_on_format(self):
        ctx = IOContext(X86_64)
        fmt = ctx.register_format("t", [IOField("v", "integer", 4, 0)])
        assert get_encode_plan(fmt) is get_encode_plan(fmt)
