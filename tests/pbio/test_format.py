"""Unit tests for IOFormat registration and wire metadata."""

import pytest

from repro.arch import SPARC_32, X86_32, X86_64
from repro.errors import DecodeError, FormatRegistrationError
from repro.pbio import IOContext, IOField, IOFormat
from repro.pbio.format import arch_from_tag

from tests.pbio.conftest import make_asdoff_fields


def simple_fields():
    return [
        IOField("x", "integer", 4, 0),
        IOField("y", "double", 8, 8),
    ]


class TestRegistration:
    def test_register_and_lookup(self):
        ctx = IOContext(X86_64)
        fmt = ctx.register_format("point", simple_fields())
        assert ctx.lookup_format("point") is fmt
        assert fmt.record_length == 16
        assert fmt.field_names() == ["x", "y"]

    def test_explicit_record_length_respected(self):
        ctx = IOContext(X86_64)
        fmt = ctx.register_format("padded", simple_fields(), record_length=24)
        assert fmt.record_length == 24

    def test_duplicate_name_rejected(self):
        ctx = IOContext(X86_64)
        ctx.register_format("point", simple_fields())
        with pytest.raises(FormatRegistrationError, match="already registered"):
            ctx.register_format("point", simple_fields())

    def test_duplicate_field_rejected(self):
        with pytest.raises(FormatRegistrationError, match="duplicate field"):
            IOFormat("bad", [IOField("x", "integer", 4, 0), IOField("x", "integer", 4, 4)], X86_64)

    def test_empty_fields_rejected(self):
        with pytest.raises(FormatRegistrationError, match="no fields"):
            IOFormat("bad", [], X86_64)

    def test_field_beyond_record_length_rejected(self):
        with pytest.raises(FormatRegistrationError, match="beyond the record length"):
            IOFormat("bad", simple_fields(), X86_64, record_length=12)

    def test_unregistered_nested_reference_rejected(self):
        with pytest.raises(FormatRegistrationError, match="unregistered format"):
            IOFormat("bad", [IOField("in_", "Missing", 8, 0)], X86_64)

    def test_nested_reference_resolves_through_context(self):
        ctx = IOContext(X86_64)
        inner = ctx.register_format("inner", simple_fields())
        outer = ctx.register_format(
            "outer",
            [IOField("a", "inner", inner.record_length, 0),
             IOField("b", "integer", 4, inner.record_length)],
        )
        assert outer.field("a").nested is inner

    def test_nested_format_wrong_arch_rejected(self):
        inner = IOFormat("inner", simple_fields(), X86_32)
        with pytest.raises(FormatRegistrationError, match="registered for"):
            IOFormat(
                "outer",
                [IOField("a", "inner", inner.record_length, 0)],
                X86_64,
                catalog={"inner": inner},
            )

    def test_dynamic_length_field_must_exist(self):
        with pytest.raises(FormatRegistrationError, match="not a field"):
            IOFormat("bad", [IOField("data", "integer[n]", 4, 0)], X86_64)

    def test_dynamic_length_field_must_be_integer(self):
        fields = [
            IOField("n", "double", 8, 0),
            IOField("data", "integer[n]", 4, 8),
        ]
        with pytest.raises(FormatRegistrationError, match="must be an integer"):
            IOFormat("bad", fields, X86_64)

    def test_dynamic_array_of_strings_rejected(self):
        fields = [
            IOField("n", "integer", 4, 0),
            IOField("names", "string[n]", 8, 8),
        ]
        with pytest.raises(FormatRegistrationError, match="not supported"):
            IOFormat("bad", fields, X86_64)

    def test_string_field_must_be_pointer_sized(self):
        with pytest.raises(FormatRegistrationError, match="pointer size"):
            IOFormat("bad", [IOField("s", "string", 4, 0)], X86_64)

    def test_bad_field_values_rejected_eagerly(self):
        with pytest.raises(FormatRegistrationError):
            IOField("", "integer", 4, 0)
        with pytest.raises(FormatRegistrationError):
            IOField("x", "integer", 0, 0)
        with pytest.raises(FormatRegistrationError):
            IOField("x", "integer", 4, -4)


class TestFormatIds:
    def test_id_is_eight_bytes(self):
        fmt = IOFormat("point", simple_fields(), X86_64)
        assert len(fmt.format_id) == 8

    def test_identical_formats_share_id(self):
        a = IOFormat("point", simple_fields(), X86_64)
        b = IOFormat("point", simple_fields(), X86_64)
        assert a.format_id == b.format_id
        assert a == b

    def test_different_arch_changes_id(self):
        a = IOFormat("point", simple_fields(), X86_64)
        b = IOFormat("point", simple_fields(), SPARC_64_OR_X86())
        assert a.format_id != b.format_id

    def test_different_fields_change_id(self):
        a = IOFormat("point", simple_fields(), X86_64)
        b = IOFormat(
            "point",
            [IOField("x", "integer", 4, 0), IOField("y", "float", 4, 4)],
            X86_64,
        )
        assert a.format_id != b.format_id


def SPARC_64_OR_X86():
    from repro.arch import SPARC_64

    return SPARC_64


class TestWireMetadata:
    def test_roundtrip_simple(self):
        fmt = IOFormat("point", simple_fields(), X86_64)
        again = IOFormat.from_wire_metadata(fmt.to_wire_metadata())
        assert again.format_id == fmt.format_id
        assert again.name == "point"
        assert again.record_length == fmt.record_length
        assert again.arch == X86_64

    def test_roundtrip_paper_structure(self):
        fields, size = make_asdoff_fields(SPARC_32)
        fmt = IOFormat("asdOff", fields, SPARC_32, record_length=size)
        again = IOFormat.from_wire_metadata(fmt.to_wire_metadata())
        assert again.format_id == fmt.format_id
        assert again.field("eta").type.length_field == "eta_count"

    def test_roundtrip_nested(self):
        ctx = IOContext(SPARC_32)
        inner = ctx.register_format(
            "inner", [IOField("v", "integer", 4, 0)]
        )
        outer = ctx.register_format(
            "outer",
            [
                IOField("a", "inner", inner.record_length, 0),
                IOField("b", "inner", inner.record_length, inner.record_length),
            ],
        )
        again = IOFormat.from_wire_metadata(outer.to_wire_metadata())
        assert again.format_id == outer.format_id
        assert again.field("a").nested.name == "inner"

    def test_bad_magic_rejected(self):
        with pytest.raises(DecodeError, match="magic"):
            IOFormat.from_wire_metadata(b"XXXX\x00\x00")

    def test_truncated_metadata_rejected(self):
        fmt = IOFormat("point", simple_fields(), X86_64)
        blob = fmt.to_wire_metadata()
        with pytest.raises(DecodeError):
            IOFormat.from_wire_metadata(blob[: len(blob) // 2])

    def test_empty_metadata_rejected(self):
        with pytest.raises(DecodeError, match="no formats"):
            IOFormat.from_wire_metadata(b"PBF1\x00\x00")


class TestArchFromTag:
    def test_known_arch_resolves_to_registry_model(self):
        assert arch_from_tag(X86_64.tag()) is X86_64

    def test_unknown_arch_reconstructed_from_tag(self):
        model = arch_from_tag("vax_custom:le:p4:i2448")
        assert model.byte_order == "little"
        assert model.pointer_size == 4
        assert model.sizeof("long") == 4
        assert model.sizeof("long long") == 8

    def test_malformed_tags_rejected(self):
        for tag in ("nope", "a:b:c:d", "x:le:p4:izzz9", "x:middle:p4:i2448"):
            with pytest.raises(DecodeError):
                arch_from_tag(tag)


class TestNestedEnumeration:
    def test_nested_formats_listed_dependencies_first(self):
        ctx = IOContext(X86_64)
        a = ctx.register_format("a", simple_fields())
        b = ctx.register_format(
            "b", [IOField("in_", "a", a.record_length, 0)]
        )
        c = ctx.register_format(
            "c",
            [
                IOField("x", "b", b.record_length, 0),
                IOField("y", "a", a.record_length, b.record_length),
            ],
        )
        names = [fmt.name for fmt in c.nested_formats()]
        assert names.index("a") < names.index("b")
        assert set(names) == {"a", "b"}
