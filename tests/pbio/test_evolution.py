"""Unit tests for format evolution (field addition/removal tolerance)."""

from repro.arch import SPARC_32, X86_64
from repro.pbio import IOContext, IOField
from repro.pbio.evolution import (
    Compatibility,
    compare_formats,
    default_record,
    formats_compatible,
    make_projection,
)


def v1_fields(arch):
    return [
        IOField("flight", "string", arch.pointer_size, 0),
        IOField("alt", "integer", 4, arch.pointer_size),
    ]


def v2_fields(arch):
    """v1 plus a speed field — the paper's restricted evolution case."""
    return v1_fields(arch) + [
        IOField("speed", "double", 8, arch.pointer_size + 8),
    ]


class TestSenderAhead:
    """New sender (v2) talking to an old receiver (v1): extra field dropped."""

    def test_extra_wire_field_dropped(self):
        sender = IOContext(SPARC_32)
        v2 = sender.register_format("track", v2_fields(SPARC_32), record_length=24)
        message = sender.encode(v2, {"flight": "DL1", "alt": 31000, "speed": 450.0})

        receiver = IOContext(X86_64)
        receiver.register_format("track", v1_fields(X86_64))
        receiver.learn_format(v2.to_wire_metadata())
        decoded = receiver.decode(message, expect="track")
        assert decoded.values == {"flight": "DL1", "alt": 31000}


class TestReceiverAhead:
    """Old sender (v1) talking to a new receiver (v2): new field defaulted."""

    def test_missing_wire_field_defaulted(self):
        sender = IOContext(SPARC_32)
        v1 = sender.register_format("track", v1_fields(SPARC_32))
        message = sender.encode(v1, {"flight": "DL2", "alt": 28000})

        receiver = IOContext(X86_64)
        receiver.register_format("track", v2_fields(X86_64), record_length=24)
        receiver.learn_format(v1.to_wire_metadata())
        decoded = receiver.decode(message, expect="track")
        assert decoded.values == {"flight": "DL2", "alt": 28000, "speed": 0.0}


class TestDefaults:
    def test_default_record_shapes(self):
        ctx = IOContext(X86_64)
        inner = ctx.register_format(
            "inner", [IOField("v", "integer", 4, 0)]
        )
        fmt = ctx.register_format(
            "t",
            [
                IOField("i", "integer", 4, 0),
                IOField("f", "double", 8, 8),
                IOField("s", "string", 8, 16),
                IOField("b", "boolean", 1, 24),
                IOField("c", "char", 1, 25),
                IOField("tag", "char[4]", 1, 26),
                IOField("arr", "integer[3]", 4, 32),
                IOField("n", "integer", 4, 44),
                IOField("dyn", "double[n]", 8, 48),
                IOField("in_", "inner", 4, 56),
                IOField("ins", "inner[2]", 4, 60),
            ],
            record_length=72,
        )
        defaults = default_record(fmt)
        assert defaults == {
            "i": 0,
            "f": 0.0,
            "s": None,
            "b": False,
            "c": "\x00",
            "tag": "",
            "arr": [0, 0, 0],
            "n": 0,
            "dyn": [],
            "in_": {"v": 0},
            "ins": [{"v": 0}, {"v": 0}],
        }

    def test_defaults_are_not_aliased(self):
        ctx = IOContext(X86_64)
        old = ctx.register_format("old", [IOField("x", "integer", 4, 0)])
        new_ctx = IOContext(X86_64)
        new = new_ctx.register_format(
            "new",
            [IOField("x", "integer", 4, 0), IOField("extra", "integer[2]", 4, 4)],
        )
        project = make_projection(old, new)
        first = project({"x": 1})
        second = project({"x": 2})
        first["extra"].append(99)
        assert second["extra"] == [0, 0]


class TestNestedEvolution:
    def test_nested_formats_project_recursively(self):
        sender = IOContext(SPARC_32)
        inner_v1 = sender.register_format("pt", [IOField("x", "double", 8, 0)])
        outer_v1 = sender.register_format(
            "seg", [IOField("a", "pt", 8, 0)], record_length=8
        )
        message = sender.encode(outer_v1, {"a": {"x": 5.0}})

        receiver = IOContext(X86_64)
        receiver.register_format(
            "pt", [IOField("x", "double", 8, 0), IOField("y", "double", 8, 8)]
        )
        receiver.register_format(
            "seg", [IOField("a", "pt", 16, 0)], record_length=16
        )
        receiver.learn_format(outer_v1.to_wire_metadata())
        decoded = receiver.decode(message, expect="seg")
        assert decoded.values == {"a": {"x": 5.0, "y": 0.0}}

    def test_shape_conflict_falls_back_to_default(self):
        """A field that is nested on one side and scalar on the other is
        treated as unknown (dropped + defaulted), never misinterpreted."""
        sender = IOContext(SPARC_32)
        wire = sender.register_format("t", [IOField("v", "integer", 4, 0)])

        receiver = IOContext(X86_64)
        inner = receiver.register_format("inner", [IOField("z", "integer", 4, 0)])
        target = receiver.register_format("t", [IOField("v", "inner", 4, 0)])
        project = make_projection(wire, target)
        assert project({"v": 7}) == {"v": {"z": 0}}


class TestCompatibilityPredicate:
    def test_same_names_compatible(self):
        a = IOContext(SPARC_32).register_format("t", v1_fields(SPARC_32))
        b = IOContext(X86_64).register_format("t", v1_fields(X86_64))
        assert formats_compatible(a, b)

    def test_differing_names_flagged(self):
        a = IOContext(SPARC_32).register_format("t", v1_fields(SPARC_32))
        b = IOContext(X86_64).register_format("t", v2_fields(X86_64), record_length=24)
        assert not formats_compatible(a, b)

    def test_identical_metadata_is_identity(self):
        a = IOContext(X86_64).register_format("t", v1_fields(X86_64))
        b = IOContext(X86_64).register_format("t", v1_fields(X86_64))
        relation = compare_formats(a, b)
        assert relation is Compatibility.IDENTITY
        assert relation.compatible and not relation.projection_needed

    def test_same_fields_other_arch_is_equivalent(self):
        """Decode is needed (layouts differ) but projection is not."""
        a = IOContext(SPARC_32).register_format("t", v1_fields(SPARC_32))
        b = IOContext(X86_64).register_format("t", v1_fields(X86_64))
        assert compare_formats(a, b) is Compatibility.EQUIVALENT

    def test_reordered_fields_are_not_identity(self):
        """Alias-aware: same *set* of fields in another order projects.

        The old set-equality predicate reported these as interchangeable."""
        a = IOContext(X86_64).register_format(
            "t", [IOField("x", "integer", 4, 0), IOField("y", "double", 8, 8)]
        )
        b = IOContext(X86_64).register_format(
            "t", [IOField("y", "double", 8, 0), IOField("x", "integer", 4, 8)]
        )
        assert compare_formats(a, b) is Compatibility.PROJECTION
        assert not formats_compatible(a, b)

    def test_retyped_field_is_projection(self):
        a = IOContext(X86_64).register_format("t", [IOField("x", "integer", 4, 0)])
        b = IOContext(X86_64).register_format("t", [IOField("x", "double", 8, 0)])
        assert compare_formats(a, b) is Compatibility.PROJECTION

    def test_enum_values_are_wire_strings(self):
        """The lineage endpoint serializes ``relation`` as these strings."""
        assert Compatibility.IDENTITY.value == "identity"
        assert Compatibility.EQUIVALENT.value == "equivalent"
        assert Compatibility.PROJECTION.value == "projection"
