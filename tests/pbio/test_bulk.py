"""Unit tests for bulk numpy array support (zero-copy NDR views)."""

import numpy
import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import DecodeError
from repro.pbio import IOContext, IOField, RecordView
from repro.pbio.bulk import array_view, native_copy, pack_array, wire_dtype
from repro.pbio.encode import encode_record


@pytest.fixture
def chem_format(sparc_context):
    return sparc_context.register_format(
        "chem",
        [
            IOField("step", "unsigned integer", 4, 0),
            IOField("n", "integer", 4, 4),
            IOField("conc", "double[n]", 8, 8),
            IOField("grid", "float[4]", 4, 12),
        ],
        record_length=32,
    )


class TestEncodeWithNumpy:
    def test_ndarray_encodes_like_list(self, chem_format):
        values = [0.5, 1.5, 2.5]
        as_list = encode_record(
            chem_format, {"step": 1, "conc": values, "grid": [1, 2, 3, 4]}
        )
        as_array = encode_record(
            chem_format,
            {"step": 1, "conc": numpy.array(values), "grid": [1, 2, 3, 4]},
        )
        assert as_list == as_array

    def test_interpreted_encoder_matches_too(self, chem_format):
        record = {
            "step": 1,
            "conc": numpy.linspace(0, 1, 17),
            "grid": [1.0, 2.0, 3.0, 4.0],
        }
        assert encode_record(chem_format, record, mode="generated") == encode_record(
            chem_format, record, mode="interpreted"
        )

    def test_wrong_dtype_converted(self, chem_format):
        as_f32 = encode_record(
            chem_format,
            {"step": 1, "conc": numpy.array([1, 2], dtype="f4"),
             "grid": [0, 0, 0, 0]},
        )
        as_list = encode_record(
            chem_format, {"step": 1, "conc": [1.0, 2.0], "grid": [0, 0, 0, 0]}
        )
        assert as_f32 == as_list

    def test_empty_ndarray_is_null(self, chem_format):
        payload = encode_record(
            chem_format,
            {"step": 1, "conc": numpy.empty(0), "grid": [0, 0, 0, 0]},
        )
        view = RecordView(chem_format, payload)
        assert view["conc"] == []


class TestArrayView:
    def test_zero_copy_dynamic_array(self, chem_format):
        values = numpy.linspace(0.0, 4.0, 9)
        payload = encode_record(
            chem_format, {"step": 7, "conc": values, "grid": [1, 2, 3, 4]}
        )
        view = RecordView(chem_format, payload)
        array = array_view(view, "conc")
        assert array.dtype == numpy.dtype(">f8")  # big-endian wire, intact
        numpy.testing.assert_array_equal(array.astype("f8"), values)
        # Genuinely aliasing the payload: no-copy semantics.
        assert array.base is not None

    def test_static_array_view(self, chem_format):
        payload = encode_record(
            chem_format, {"step": 1, "conc": [], "grid": [1.0, 2.0, 3.0, 4.0]}
        )
        array = array_view(RecordView(chem_format, payload), "grid")
        assert array.dtype == numpy.dtype(">f4")
        numpy.testing.assert_array_equal(array.astype("f4"), [1, 2, 3, 4])

    def test_empty_dynamic_array(self, chem_format):
        payload = encode_record(
            chem_format, {"step": 1, "conc": [], "grid": [0, 0, 0, 0]}
        )
        assert len(array_view(RecordView(chem_format, payload), "conc")) == 0

    def test_views_are_readonly(self, chem_format):
        payload = encode_record(
            chem_format, {"step": 1, "conc": [1.0], "grid": [0, 0, 0, 0]}
        )
        array = array_view(RecordView(chem_format, payload), "conc")
        with pytest.raises((ValueError, RuntimeError)):
            array[0] = 9.0

    def test_native_copy_is_host_order(self, chem_format):
        payload = encode_record(
            chem_format, {"step": 1, "conc": [1.0, 2.0], "grid": [0, 0, 0, 0]}
        )
        copied = native_copy(array_view(RecordView(chem_format, payload), "conc"))
        assert copied.dtype.byteorder in ("=", "<", ">")
        assert copied.dtype == numpy.dtype("f8").newbyteorder("=")
        numpy.testing.assert_array_equal(copied, [1.0, 2.0])

    def test_non_array_field_rejected(self, chem_format):
        payload = encode_record(
            chem_format, {"step": 1, "conc": [], "grid": [0, 0, 0, 0]}
        )
        with pytest.raises(DecodeError, match="not an array"):
            array_view(RecordView(chem_format, payload), "step")

    def test_string_array_rejected(self, x86_context):
        fmt = x86_context.register_format(
            "t", [IOField("names", "string[2]", 8, 0)]
        )
        payload = encode_record(fmt, {"names": ["a", "b"]})
        with pytest.raises(DecodeError, match="not a bulk numeric"):
            array_view(RecordView(fmt, payload), "names")

    def test_corrupt_pointer_detected(self, chem_format):
        payload = bytearray(
            encode_record(chem_format, {"step": 1, "conc": [1.0], "grid": [0, 0, 0, 0]})
        )
        # Point conc past the end (offset 8 is the conc pointer slot).
        payload[8:12] = (10**6).to_bytes(4, "big")
        with pytest.raises(DecodeError, match="past the payload"):
            array_view(RecordView(chem_format, bytes(payload)), "conc")


class TestHelpers:
    def test_wire_dtype_matches_architecture(self, chem_format):
        assert wire_dtype(chem_format, chem_format.field("conc")) == numpy.dtype(">f8")

    def test_pack_array_homogeneous_is_plain_bytes(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField("n", "integer", 4, 0), IOField("d", "double[n]", 8, 8)],
            record_length=16,
        )
        values = numpy.array([1.0, 2.0, 3.0])
        assert pack_array(fmt, "d", values) == values.tobytes()

    def test_pack_array_foreign_order_swaps(self, sparc_context, chem_format):
        values = numpy.array([1.0, 2.0])
        packed = pack_array(chem_format, "conc", values)
        assert packed == values.astype(">f8").tobytes()

    def test_full_roundtrip_through_view(self, chem_format):
        """numpy in, numpy out, across simulated architectures."""
        values = numpy.arange(1000, dtype="f8")
        payload = encode_record(
            chem_format, {"step": 2, "conc": values, "grid": [0, 0, 0, 0]}
        )
        # The receiver (this host) views the big-endian wire data in
        # place and converts once, vectorized.
        array = native_copy(array_view(RecordView(chem_format, payload), "conc"))
        numpy.testing.assert_array_equal(array, values)
