"""Unit tests for format_from_layout and the standalone decode API."""

import pytest

from repro.arch import SPARC_32, X86_64, FieldDecl, layout_struct
from repro.errors import DecodeError, FormatRegistrationError
from repro.pbio import IOContext, format_from_layout
from repro.pbio.decode import ConverterCache, decode_payload
from repro.pbio.encode import encode_record


class TestFormatFromLayout:
    def _layout(self, arch):
        return layout_struct(
            arch,
            "track",
            [
                FieldDecl("flight", "char*"),
                FieldDecl("alt", "int"),
                FieldDecl("coords", "double", count=2),
                FieldDecl("n", "int"),
                FieldDecl("speeds", "double*"),
            ],
        )

    def test_builds_format_with_layout_offsets(self):
        layout = self._layout(SPARC_32)
        fmt = format_from_layout(
            "track",
            layout,
            {
                "flight": "string",
                "alt": "integer",
                "coords": "double[2]",
                "n": "integer",
                "speeds": "double[n]",
            },
            element_sizes={"speeds": 8},
        )
        assert fmt.record_length == layout.size
        assert fmt.field("coords").offset == layout.offsetof("coords")
        assert fmt.field("speeds").size == 8  # element size, not pointer

    def test_roundtrip_through_built_format(self):
        layout = self._layout(SPARC_32)
        fmt = format_from_layout(
            "track",
            layout,
            {
                "flight": "string",
                "alt": "integer",
                "coords": "double[2]",
                "n": "integer",
                "speeds": "double[n]",
            },
            element_sizes={"speeds": 8},
        )
        record = {
            "flight": "DL1", "alt": 31000, "coords": [33.6, -84.4],
            "n": 2, "speeds": [450.0, 455.5],
        }
        payload = encode_record(fmt, record)
        assert decode_payload(fmt, payload) == record

    def test_missing_type_rejected(self):
        layout = layout_struct(SPARC_32, "t", [FieldDecl("x", "int")])
        with pytest.raises(FormatRegistrationError, match="no type given"):
            format_from_layout("t", layout, {})

    def test_dynamic_array_needs_element_size(self):
        layout = layout_struct(
            SPARC_32, "t", [FieldDecl("n", "int"), FieldDecl("d", "double*")]
        )
        with pytest.raises(FormatRegistrationError, match="element_sizes"):
            format_from_layout("t", layout, {"n": "integer", "d": "double[n]"})

    def test_nested_via_catalog(self):
        inner_layout = layout_struct(X86_64, "pt", [FieldDecl("x", "double")])
        inner = format_from_layout("pt", inner_layout, {"x": "double"})
        outer_layout = layout_struct(
            X86_64, "seg", [FieldDecl("a", inner_layout), FieldDecl("b", inner_layout)]
        )
        outer = format_from_layout(
            "seg", outer_layout, {"a": "pt", "b": "pt"}, catalog={"pt": inner}
        )
        record = {"a": {"x": 1.0}, "b": {"x": 2.0}}
        assert decode_payload(outer, encode_record(outer, record)) == record


class TestDecodePayloadAPI:
    def test_short_payload_rejected(self, x86_context):
        from repro.pbio import IOField

        fmt = x86_context.register_format("t", [IOField("v", "double", 8, 0)])
        with pytest.raises(DecodeError, match="shorter than"):
            decode_payload(fmt, b"\x00\x00")

    def test_shared_cache_reused(self, x86_context):
        from repro.pbio import IOField

        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        payload = encode_record(fmt, {"v": 7})
        cache = ConverterCache()
        decode_payload(fmt, payload, cache=cache)
        decode_payload(fmt, payload, cache=cache)
        assert cache.builds == 1

    def test_interpreted_mode(self, x86_context):
        from repro.pbio import IOField

        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        payload = encode_record(fmt, {"v": 9})
        assert decode_payload(fmt, payload, mode="interpreted") == {"v": 9}


class TestXDRStaticStringArrays:
    def test_static_string_array_roundtrip(self, x86_context):
        from repro.pbio import IOField
        from repro.wire import XDRCodec

        fmt = x86_context.register_format(
            "t", [IOField("names", "string[3]", 8, 0)]
        )
        codec = XDRCodec(fmt)
        record = {"names": ["alpha", None, ""]}
        assert codec.decode(codec.encode(record)) == record
