"""Unit tests for PBIO field-type string parsing."""

import pytest

from repro.arch.model import TypeKind
from repro.errors import FormatRegistrationError
from repro.pbio.types import kind_of, parse_field_type


class TestParseFieldType:
    def test_plain_scalar(self):
        parsed = parse_field_type("integer")
        assert parsed.is_scalar
        assert parsed.base == "integer"
        assert parsed.is_primitive

    def test_paper_static_array_notation(self):
        parsed = parse_field_type("integer[5]")
        assert parsed.is_static_array
        assert parsed.count == 5

    def test_paper_dynamic_array_notation(self):
        parsed = parse_field_type("integer[eta_count]")
        assert parsed.is_dynamic_array
        assert parsed.length_field == "eta_count"

    def test_nested_format_reference(self):
        parsed = parse_field_type("ASDOffEvent")
        assert parsed.is_scalar
        assert not parsed.is_primitive

    def test_string_type(self):
        assert parse_field_type("string").is_string

    def test_whitespace_tolerated(self):
        assert parse_field_type(" integer [ 5 ] ").count == 5

    def test_render_roundtrips(self):
        for text in ("integer", "integer[5]", "double[n]", "string"):
            assert parse_field_type(text).render() == text

    def test_empty_type_rejected(self):
        with pytest.raises(FormatRegistrationError):
            parse_field_type("")

    def test_zero_size_array_rejected(self):
        with pytest.raises(FormatRegistrationError, match="positive"):
            parse_field_type("integer[0]")

    def test_unbalanced_brackets_rejected(self):
        with pytest.raises(FormatRegistrationError):
            parse_field_type("integer[5")
        with pytest.raises(FormatRegistrationError):
            parse_field_type("integer]5[")

    def test_empty_dimension_rejected(self):
        with pytest.raises(FormatRegistrationError):
            parse_field_type("integer[]")

    def test_bad_dimension_name_rejected(self):
        with pytest.raises(FormatRegistrationError, match="dimension"):
            parse_field_type("integer[5abc]")


class TestKinds:
    def test_all_primitive_kinds(self):
        assert kind_of("integer") == TypeKind.SIGNED_INT
        assert kind_of("unsigned integer") == TypeKind.UNSIGNED_INT
        assert kind_of("float") == TypeKind.FLOAT
        assert kind_of("double") == TypeKind.FLOAT
        assert kind_of("char") == TypeKind.CHAR
        assert kind_of("string") == TypeKind.POINTER
        assert kind_of("boolean") == TypeKind.BOOLEAN
        assert kind_of("enumeration") == TypeKind.ENUMERATION

    def test_unknown_kind_rejected(self):
        with pytest.raises(FormatRegistrationError):
            kind_of("quaternion")
