"""Unit tests for the generated (sender-side DCG) encoder."""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import EncodeError
from repro.pbio import IOContext, IOField
from repro.pbio.codegen import generate_encoder_source, make_generated_encoder
from repro.pbio.encode import encode_record

from tests.pbio.conftest import ASDOFF_RECORD, register_asdoff


class TestByteParity:
    def test_identical_to_plan_on_paper_structure(self, any_arch):
        ctx = IOContext(any_arch)
        fmt = register_asdoff(ctx)
        generated = encode_record(fmt, ASDOFF_RECORD, mode="generated")
        interpreted = encode_record(fmt, ASDOFF_RECORD, mode="interpreted")
        assert generated == interpreted

    def test_identical_with_nulls_and_empties(self, sparc_context):
        fmt = sparc_context.register_format(
            "t",
            [
                IOField("s", "string", 4, 0),
                IOField("n", "integer", 4, 4),
                IOField("d", "double[n]", 8, 8),
            ],
            record_length=16,
        )
        for record in (
            {"s": None, "d": []},
            {"s": "", "d": [1.0]},
            {"s": "x", "d": None},
        ):
            assert encode_record(fmt, record, mode="generated") == encode_record(
                fmt, dict(record), mode="interpreted"
            )

    def test_identical_on_nested_with_char_buffers(self, sparc_context):
        inner = sparc_context.register_format(
            "inner",
            [IOField("tag", "char[4]", 1, 0), IOField("c", "char", 1, 4),
             IOField("b", "boolean", 1, 5)],
            record_length=8,
        )
        fmt = sparc_context.register_format(
            "outer", [IOField("pair", "inner[2]", 8, 0)], record_length=16
        )
        record = {"pair": [{"tag": "ab", "c": "x", "b": True},
                           {"tag": "cdef", "c": "y", "b": False}]}
        assert encode_record(fmt, record, mode="generated") == encode_record(
            fmt, record, mode="interpreted"
        )


class TestGeneratedSource:
    def test_single_pack_for_fixed_region(self, sparc_context):
        fmt = register_asdoff(sparc_context)
        source = generate_encoder_source(fmt)
        assert source.count("return pack(") == 1

    def test_offsets_absent_because_order_is_baked(self, sparc_context):
        """The encoder never mentions offsets: the pack format string of
        the plan already encodes them as pads."""
        fmt = register_asdoff(sparc_context)
        source = generate_encoder_source(fmt)
        assert "offset" not in source


class TestErrorParity:
    """The generated path must raise the same errors as the plan."""

    @pytest.fixture
    def fmt(self, x86_context):
        return x86_context.register_format(
            "t",
            [
                IOField("n", "integer", 4, 0),
                IOField("name", "string", 8, 8),
                IOField("data", "double[n]", 8, 16),
                IOField("trio", "integer[3]", 4, 24),
            ],
            record_length=40,
        )

    def test_missing_field(self, fmt):
        with pytest.raises(EncodeError, match="missing field"):
            encode_record(fmt, {"name": "x", "data": []})

    def test_string_type_mismatch(self, fmt):
        with pytest.raises(EncodeError, match="expects a string"):
            encode_record(fmt, {"name": 5, "data": [], "trio": [1, 2, 3]})

    def test_count_mismatch(self, fmt):
        with pytest.raises(EncodeError, match="count field"):
            encode_record(
                fmt, {"name": "x", "data": [1.0], "n": 3, "trio": [1, 2, 3]}
            )

    def test_static_array_length(self, fmt):
        with pytest.raises(EncodeError, match="exactly 3"):
            encode_record(fmt, {"name": "x", "data": [], "trio": [1]})

    def test_out_of_range_scalar(self, x86_context):
        fmt = x86_context.register_format("s", [IOField("v", "integer", 2, 0)])
        with pytest.raises(EncodeError):
            encode_record(fmt, {"v": 2**40})

    def test_unknown_mode_rejected(self, fmt):
        with pytest.raises(EncodeError, match="unknown encode mode"):
            encode_record(fmt, {}, mode="quantum")


class TestFallbackCorrectness:
    def test_enum_members_encode_identically(self, x86_context):
        import enum

        class Color(enum.IntEnum):
            RED = 3

        fmt = x86_context.register_format(
            "t", [IOField("e", "enumeration", 4, 0)]
        )
        generated = encode_record(fmt, {"e": Color.RED}, mode="generated")
        interpreted = encode_record(fmt, {"e": Color.RED}, mode="interpreted")
        assert generated == interpreted
        assert x86_context.decode(
            x86_context.encode(fmt, {"e": Color.RED})
        ).values == {"e": 3}

    def test_char_given_as_int_falls_back_identically(self, x86_context):
        """Int-valued chars miss the generated fast path's str handling;
        the fallback must produce the same bytes the plan does."""
        fmt = x86_context.register_format("t", [IOField("c", "char", 1, 0)])
        generated = encode_record(fmt, {"c": 65}, mode="generated")
        interpreted = encode_record(fmt, {"c": 65}, mode="interpreted")
        assert generated == interpreted == b"A"
