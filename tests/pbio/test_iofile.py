"""Unit tests for PBIO data files (heterogeneous binary archives)."""

import io

import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import DecodeError
from repro.pbio import IOContext, IOField
from repro.pbio.iofile import (
    IOFileReader,
    IOFileWriter,
    dump_records,
    load_records,
)

from tests.pbio.conftest import register_asdoff
from tests.conftest import ALL_ARCHES  # noqa: F401 (documents provenance)


from tests.pbio.conftest import ASDOFF_RECORD


@pytest.fixture
def airline_records():
    """Twenty distinct records in register_asdoff's field naming."""
    return [
        {**ASDOFF_RECORD, "fltNum": 1000 + i, "eta": [i, i * 2], "eta_count": 2}
        for i in range(20)
    ]


class TestWriteRead:
    def test_roundtrip_via_path(self, tmp_path, airline_records):
        path = tmp_path / "flights.pbio"
        writer_context = IOContext(SPARC_32)
        fmt = register_asdoff(writer_context)
        count = dump_records(path, writer_context, fmt, airline_records)
        assert count == 20

        loaded = load_records(path, IOContext(X86_64))
        assert [r.values for r in loaded] == airline_records
        assert all(r.format_name == "asdOff" for r in loaded)

    def test_roundtrip_via_file_object(self, airline_records):
        buffer = io.BytesIO()
        writer_context = IOContext(SPARC_32)
        fmt = register_asdoff(writer_context)
        with IOFileWriter(buffer, writer_context) as writer:
            for record in airline_records[:3]:
                writer.write(fmt, record)
        buffer.seek(0)
        with IOFileReader(buffer, IOContext(X86_64)) as reader:
            values = [r.values for r in reader.records()]
        assert values == airline_records[:3]

    def test_metadata_written_once_per_format(self, tmp_path, airline_records):
        path = tmp_path / "f.pbio"
        context = IOContext(SPARC_32)
        fmt = register_asdoff(context)
        with IOFileWriter(path, context) as writer:
            for record in airline_records:
                writer.write(fmt, record)
        raw = path.read_bytes()
        assert raw.count(b"PBF1") == 1  # one metadata block for 20 records

    def test_mixed_formats_in_one_file(self, tmp_path):
        path = tmp_path / "mixed.pbio"
        context = IOContext(SPARC_32)
        register_asdoff(context)
        context.register_format("tick", [IOField("v", "integer", 4, 0)])
        with IOFileWriter(path, context) as writer:
            writer.write("tick", {"v": 1})
            writer.write("asdOff", dict(ASDOFF_RECORD))
            writer.write("tick", {"v": 2})
        loaded = load_records(path)
        assert [r.format_name for r in loaded] == ["tick", "asdOff", "tick"]
        assert loaded[2].values == {"v": 2}

    def test_reader_needs_no_preregistered_formats(self, tmp_path):
        """The file is self-describing: a bare default context reads it."""
        path = tmp_path / "f.pbio"
        context = IOContext(SPARC_32)
        context.register_format("tick", [IOField("v", "integer", 4, 0)])
        dump_records(path, context, "tick", [{"v": 7}])
        (record,) = load_records(path)
        assert record.values == {"v": 7}

    def test_expect_projection_on_read(self, tmp_path):
        """Reading a v1 archive with v2 code: missing fields default."""
        path = tmp_path / "v1.pbio"
        old = IOContext(SPARC_32)
        old.register_format("track", [IOField("alt", "integer", 4, 0)])
        dump_records(path, old, "track", [{"alt": 31000}])

        new = IOContext(X86_64)
        new.register_format(
            "track",
            [IOField("alt", "integer", 4, 0), IOField("speed", "double", 8, 8)],
        )
        (record,) = load_records(path, new, expect="track")
        assert record.values == {"alt": 31000, "speed": 0.0}


class TestErrors:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"NOTPBIO!")
        with pytest.raises(DecodeError, match="not a PBIO file"):
            IOFileReader(path)

    def test_truncated_file_rejected(self, tmp_path, airline_records):
        path = tmp_path / "t.pbio"
        context = IOContext(SPARC_32)
        fmt = register_asdoff(context)
        dump_records(path, context, fmt, airline_records[:2])
        data = path.read_bytes()
        path.write_bytes(data[:-7])  # chop mid-record
        reader = IOFileReader(path, IOContext(X86_64))
        with pytest.raises(DecodeError, match="truncated"):
            list(reader.records())

    def test_empty_file_yields_nothing(self, tmp_path):
        path = tmp_path / "empty.pbio"
        context = IOContext(SPARC_32)
        with IOFileWriter(path, context):
            pass
        assert load_records(path) == []

    def test_records_read_counter(self, tmp_path):
        path = tmp_path / "c.pbio"
        context = IOContext(SPARC_32)
        context.register_format("tick", [IOField("v", "integer", 4, 0)])
        dump_records(path, context, "tick", [{"v": i} for i in range(5)])
        reader = IOFileReader(path)
        list(reader.records())
        assert reader.records_read == 5
