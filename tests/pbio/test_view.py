"""Unit tests for lazy record views (zero-copy homogeneous receive)."""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import ArchError, DecodeError
from repro.pbio import IOContext, IOField, RecordView, view_message
from repro.pbio.encode import encode_record

from tests.pbio.conftest import ASDOFF_RECORD, register_asdoff


@pytest.fixture
def asdoff(sparc_context):
    fmt = register_asdoff(sparc_context)
    payload = encode_record(fmt, ASDOFF_RECORD)
    return fmt, payload


class TestFieldAccess:
    def test_scalars_and_strings(self, asdoff):
        fmt, payload = asdoff
        view = RecordView(fmt, payload)
        assert view["fltNum"] == 1204
        assert view["cntrId"] == "ZTL"
        assert view["dest"] == "LAX"

    def test_arrays(self, asdoff):
        fmt, payload = asdoff
        view = RecordView(fmt, payload)
        assert view["off"] == [10, 20, 30, 40, 50]
        assert view["eta"] == [1000, 2000, 3000]
        assert view["eta_count"] == 3

    def test_materialize_equals_eager_decode(self, asdoff):
        fmt, payload = asdoff
        assert RecordView(fmt, payload).materialize() == ASDOFF_RECORD

    def test_byte_swapping_view_from_foreign_arch(self, asdoff):
        """Views work across architectures too — lazily."""
        fmt, payload = asdoff  # big-endian wire, we run little-endian
        view = RecordView(fmt, payload)
        assert view["fltNum"] == 1204

    def test_unknown_field_raises(self, asdoff):
        fmt, payload = asdoff
        with pytest.raises(Exception, match="no field"):
            RecordView(fmt, payload)["bogus"]

    def test_values_cached(self, asdoff):
        fmt, payload = asdoff
        view = RecordView(fmt, payload)
        first = view["off"]
        assert view["off"] is first


class TestMappingProtocol:
    def test_iteration_in_field_order(self, asdoff):
        fmt, payload = asdoff
        assert list(RecordView(fmt, payload)) == fmt.field_names()

    def test_len_and_contains(self, asdoff):
        fmt, payload = asdoff
        view = RecordView(fmt, payload)
        assert len(view) == 9
        assert "arln" in view
        assert "bogus" not in view

    def test_dict_conversion(self, asdoff):
        fmt, payload = asdoff
        assert dict(RecordView(fmt, payload)) == ASDOFF_RECORD


class TestNestedViews:
    def test_nested_fields_are_views(self, sparc_context):
        inner = sparc_context.register_format(
            "pt", [IOField("x", "double", 8, 0), IOField("y", "double", 8, 8)]
        )
        outer = sparc_context.register_format(
            "seg",
            [IOField("label", "string", 4, 0), IOField("a", "pt", 16, 8),
             IOField("b", "pt", 16, 24)],
            record_length=40,
        )
        record = {"label": "rw", "a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0, "y": 4.0}}
        view = RecordView(outer, encode_record(outer, record))
        assert isinstance(view["a"], RecordView)
        assert view["a"]["y"] == 2.0
        assert view.materialize() == record

    def test_null_string_and_empty_array(self, sparc_context):
        fmt = sparc_context.register_format(
            "t",
            [IOField("s", "string", 4, 0), IOField("n", "integer", 4, 4),
             IOField("d", "double[n]", 8, 8)],
            record_length=12,
        )
        view = RecordView(fmt, encode_record(fmt, {"s": None, "d": []}))
        assert view["s"] is None
        assert view["d"] == []


class TestViewMessage:
    def test_view_over_framed_message(self, sparc_context):
        fmt = register_asdoff(sparc_context)
        message = sparc_context.encode(fmt, ASDOFF_RECORD)
        view = view_message(fmt, message)
        assert view["arln"] == "DL"

    def test_context_decode_view_resolves_format(self, sparc_context, x86_context):
        fmt = register_asdoff(sparc_context)
        message = sparc_context.encode(fmt, ASDOFF_RECORD)
        x86_context.learn_format(fmt.to_wire_metadata())
        view = x86_context.decode_view(message)
        assert view["fltNum"] == 1204
        assert view.materialize() == ASDOFF_RECORD

    def test_context_decode_view_rejects_unknown_format(self, sparc_context, x86_context):
        fmt = register_asdoff(sparc_context)
        message = sparc_context.encode(fmt, ASDOFF_RECORD)
        with pytest.raises(DecodeError, match="unknown format id"):
            x86_context.decode_view(message)

    def test_context_decode_view_rejects_metadata_message(self, sparc_context):
        fmt = register_asdoff(sparc_context)
        with pytest.raises(DecodeError, match="data message"):
            sparc_context.decode_view(sparc_context.format_message(fmt))

    def test_wrong_format_id_rejected(self, sparc_context):
        fmt = register_asdoff(sparc_context)
        other = sparc_context.register_format("other", [IOField("v", "integer", 4, 0)])
        message = sparc_context.encode(other, {"v": 1})
        with pytest.raises(DecodeError, match="carries format"):
            view_message(fmt, message)

    def test_non_data_message_rejected(self, sparc_context):
        fmt = register_asdoff(sparc_context)
        with pytest.raises(DecodeError, match="data messages"):
            view_message(fmt, sparc_context.format_message(fmt))

    def test_short_payload_rejected(self, sparc_context):
        fmt = register_asdoff(sparc_context)
        with pytest.raises(DecodeError, match="too short"):
            RecordView(fmt, b"\x00" * 4)
