"""Unit tests for the from-scratch HTTP subset."""

import pytest

from repro.errors import DiscoveryError
from repro.metaserver.http import HTTPRequest, HTTPResponse, split_url


class TestSplitUrl:
    def test_full_url(self):
        assert split_url("http://example.com:8080/a/b.xsd") == (
            "example.com", 8080, "/a/b.xsd",
        )

    def test_default_port(self):
        assert split_url("http://example.com/x") == ("example.com", 80, "/x")

    def test_bare_host_gets_root_path(self):
        assert split_url("http://example.com") == ("example.com", 80, "/")

    def test_https_rejected(self):
        with pytest.raises(DiscoveryError, match="http://"):
            split_url("https://example.com/x")

    def test_garbage_rejected(self):
        with pytest.raises(DiscoveryError):
            split_url("not a url")

    def test_bad_port_rejected(self):
        with pytest.raises(DiscoveryError, match="port"):
            split_url("http://example.com:http/x")

    def test_empty_host_rejected(self):
        with pytest.raises(DiscoveryError, match="no host"):
            split_url("http:///x")


class TestRequestRoundtrip:
    def test_render_and_parse(self):
        request = HTTPRequest("GET", "/schemas/asdoff.xsd", {"Host": "x:1"})
        again = HTTPRequest.parse(request.render())
        assert again.method == "GET"
        assert again.path == "/schemas/asdoff.xsd"
        assert again.header("host") == "x:1"

    def test_body_gets_content_length(self):
        request = HTTPRequest("POST", "/x", body=b"hello")
        raw = request.render()
        assert b"Content-Length: 5" in raw
        assert HTTPRequest.parse(raw).body == b"hello"

    def test_header_lookup_case_insensitive(self):
        request = HTTPRequest("GET", "/", {"X-Thing": "v"})
        assert request.header("x-thing") == "v"
        assert request.header("missing", "d") == "d"

    def test_malformed_request_line_rejected(self):
        with pytest.raises(DiscoveryError, match="request line"):
            HTTPRequest.parse(b"GARBAGE\r\n\r\n")

    def test_malformed_header_rejected(self):
        with pytest.raises(DiscoveryError, match="header line"):
            HTTPRequest.parse(b"GET / HTTP/1.0\r\nnocolonhere\r\n\r\n")


class TestResponseRoundtrip:
    def test_render_and_parse(self):
        response = HTTPResponse(200, {"Content-Type": "text/xml"}, b"<a/>")
        again = HTTPResponse.parse(response.render())
        assert again.status == 200
        assert again.header("content-type") == "text/xml"
        assert again.body == b"<a/>"

    def test_content_length_added(self):
        raw = HTTPResponse(404, body=b"gone").render()
        assert b"Content-Length: 4" in raw

    def test_reason_phrases(self):
        assert b"200 OK" in HTTPResponse(200).render()
        assert b"404 Not Found" in HTTPResponse(404).render()

    def test_malformed_status_rejected(self):
        with pytest.raises(DiscoveryError):
            HTTPResponse.parse(b"HTTP/1.0 abc Whatever\r\n\r\n")
        with pytest.raises(DiscoveryError):
            HTTPResponse.parse(b"NOTHTTP\r\n\r\n")
