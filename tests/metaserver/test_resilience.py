"""The resilient retrieval path: retry, circuit breaking, stale serving.

These tests drive :class:`~repro.metaserver.MetadataClient` against a
:class:`~repro.metaserver.FlakyMetadataServer` with deterministic fault
schedules, plus unit-test the policy pieces with fake clocks so nothing
here depends on wall time.
"""

import random

import pytest

from repro.errors import (
    CircuitOpenError,
    DiscoveryError,
    MetadataHTTPError,
    RetryExhaustedError,
)
from repro.faults import ServerFaultPlan
from repro.metaserver import (
    CircuitBreaker,
    FlakyMetadataServer,
    MetadataClient,
    RetryPolicy,
)
from repro.workloads import ASDOFF_B_SCHEMA


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def fast_client(**kwargs):
    """A client that never sleeps for real and never waits long."""
    kwargs.setdefault("timeout", 2.0)
    kwargs.setdefault("retry", RetryPolicy(base_delay=0.001, cap_delay=0.002))
    kwargs.setdefault("sleep", lambda seconds: None)
    return MetadataClient(**kwargs)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, cap_delay=0.5, multiplier=2, jitter=0)
        rng = random.Random(0)
        delays = [policy.delay_for(n, rng) for n in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_shrinks_but_never_inflates(self):
        policy = RetryPolicy(base_delay=1.0, cap_delay=1.0, jitter=0.5)
        rng = random.Random(1)
        for _ in range(100):
            delay = policy.delay_for(1, rng)
            assert 0.5 <= delay <= 1.0

    def test_retryability(self):
        policy = RetryPolicy()
        assert policy.is_retryable(MetadataHTTPError("x", status=503))
        assert not policy.is_retryable(MetadataHTTPError("x", status=404))
        assert policy.is_retryable(DiscoveryError("connection refused"))
        assert not policy.is_retryable(CircuitOpenError("x"))
        assert not policy.is_retryable(ValueError("x"))

    def test_validation(self):
        with pytest.raises(DiscoveryError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(DiscoveryError):
            RetryPolicy(jitter=2.0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10, clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 1
        assert breaker.retry_after() == pytest.approx(10)

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5)
        assert breaker.allow() and breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=5, clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5)
        assert breaker.state == "half-open"
        breaker.record_failure()  # a single half-open failure re-opens
        assert breaker.state == "open"
        assert breaker.trips == 2

    def test_success_resets_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"


class TestRetryAgainstFlakyServer:
    def test_scheduled_5xx_retried_to_success(self):
        plan = ServerFaultPlan().on(1, "error").on(2, "error")
        with FlakyMetadataServer(plan=plan) as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            client = fast_client(ttl=0)
            schema = client.get_schema(url)
        assert schema.complex_types
        assert client.retries == 2
        assert client.last_result.attempts == 3
        assert server.faults_injected == 2

    def test_truncated_body_detected_and_retried(self):
        plan = ServerFaultPlan().on(1, "truncate")
        with FlakyMetadataServer(plan=plan) as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            client = fast_client(ttl=0)
            assert client.get_schema(url).complex_types
        assert client.retries == 1

    def test_hang_becomes_timeout_then_retry(self):
        plan = ServerFaultPlan(hang_seconds=0.5).on(1, "hang")
        with FlakyMetadataServer(plan=plan) as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            client = fast_client(ttl=0, timeout=0.1)
            assert client.get_schema(url).complex_types
        assert client.retries >= 1

    def test_404_not_retried(self):
        with FlakyMetadataServer() as server:
            client = fast_client(ttl=0)
            with pytest.raises(MetadataHTTPError) as excinfo:
                client.get_bytes(server.url_for("/missing.xsd"))
        assert excinfo.value.status == 404
        assert client.retries == 0

    def test_budget_exhaustion_raises_retry_exhausted(self):
        plan = ServerFaultPlan(error=1.0)
        with FlakyMetadataServer(plan=plan) as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            client = fast_client(ttl=0, retry=RetryPolicy(
                max_attempts=3, base_delay=0.001))
            with pytest.raises(RetryExhaustedError) as excinfo:
                client.get_bytes(url)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, MetadataHTTPError)

    def test_breaker_opens_under_sustained_failure(self):
        plan = ServerFaultPlan(error=1.0)
        clock = FakeClock()
        with FlakyMetadataServer(plan=plan) as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            client = fast_client(
                ttl=0,
                breaker_threshold=4,
                breaker_reset=60,
                clock=clock,
                retry=RetryPolicy(max_attempts=6, base_delay=0.001),
            )
            with pytest.raises(DiscoveryError):
                client.get_bytes(url)
            assert client.breaker_trips == 1
            # Breaker is open: the next call fails fast, no request made.
            served_before = server.requests_served + server.faults_injected
            with pytest.raises(CircuitOpenError):
                client.get_bytes(url)
            assert server.requests_served + server.faults_injected == served_before


class TestCacheSemantics:
    def test_fresh_hit_counts(self):
        clock = FakeClock()
        with FlakyMetadataServer() as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            client = fast_client(ttl=60, clock=clock)
            client.get_bytes(url)
            client.get_bytes(url)
        assert client.stats()["fetches"] == 1
        assert client.stats()["hits"] == 1

    def test_stale_served_when_server_unreachable(self):
        clock = FakeClock()
        server = FlakyMetadataServer().start()
        url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
        client = fast_client(ttl=10, clock=clock)
        fresh = client.get(url)
        assert not fresh.stale
        server.stop()
        clock.advance(11)  # entry expired, server gone
        result = client.get(url)
        assert result.stale
        assert result.body == fresh.body
        assert client.stale_serves == 1

    def test_stale_ttl_bounds_staleness(self):
        clock = FakeClock()
        server = FlakyMetadataServer().start()
        url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
        client = fast_client(ttl=10, stale_ttl=5, clock=clock)
        client.get(url)
        server.stop()
        clock.advance(16)  # past ttl + stale_ttl
        with pytest.raises(DiscoveryError):
            client.get(url)

    def test_ttl_zero_disables_cache_and_stale(self):
        clock = FakeClock()
        server = FlakyMetadataServer().start()
        url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
        client = fast_client(ttl=0, clock=clock)
        client.get_bytes(url)
        server.stop()
        with pytest.raises(DiscoveryError):
            client.get_bytes(url)

    def test_lru_bound_and_eviction_counter(self):
        with FlakyMetadataServer() as server:
            urls = [
                server.publish_schema(f"/s{i}.xsd", ASDOFF_B_SCHEMA)
                for i in range(4)
            ]
            client = fast_client(ttl=60, max_entries=2)
            for url in urls:
                client.get_bytes(url)
        stats = client.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 2

    def test_lru_keeps_recently_used(self):
        clock = FakeClock()
        server = FlakyMetadataServer().start()
        url_a = server.publish_schema("/a.xsd", ASDOFF_B_SCHEMA)
        url_b = server.publish_schema("/b.xsd", ASDOFF_B_SCHEMA)
        url_c = server.publish_schema("/c.xsd", ASDOFF_B_SCHEMA)
        client = fast_client(ttl=60, max_entries=2, clock=clock)
        client.get_bytes(url_a)
        client.get_bytes(url_b)
        client.get_bytes(url_a)  # refresh a's recency
        client.get_bytes(url_c)  # evicts b
        server.stop()
        assert client.get(url_a).cached
        with pytest.raises(DiscoveryError):
            client.get(url_b)


class TestStatsSurface:
    def test_stats_exposes_every_counter(self):
        with FlakyMetadataServer() as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            client = fast_client(ttl=60)
            client.get_bytes(url)
            client.get_bytes(url)
        stats = client.stats()
        assert stats["fetches"] == 1
        assert stats["hits"] == 1
        assert stats["retries"] == 0
        assert stats["stale_serves"] == 0
        assert stats["evictions"] == 0
        assert stats["entries"] == 1
        assert stats["breaker_trips"] == 0
        # One breaker was created for the server's host, currently closed.
        assert len(stats["breakers"]) == 1
        (breaker,) = stats["breakers"].values()
        assert breaker == {"state": "closed", "trips": 0}

    def test_stats_reports_retries_and_breaker_state(self):
        clock = FakeClock()
        plan = ServerFaultPlan(error=1.0)  # every request 503s
        with FlakyMetadataServer(plan=plan) as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            host = f"{server.address[0]}:{server.address[1]}"
            client = fast_client(
                ttl=0,
                clock=clock,
                retry=RetryPolicy(max_attempts=3, base_delay=0.001, cap_delay=0.002),
                breaker_threshold=3,
            )
            with pytest.raises(RetryExhaustedError):
                client.get_bytes(url)
        stats = client.stats()
        assert stats["retries"] == 2  # attempts beyond the first
        assert stats["breaker_trips"] == 1
        assert stats["breakers"][host]["state"] == "open"
        assert stats["breakers"][host]["trips"] == 1
