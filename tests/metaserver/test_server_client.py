"""Integration tests for the metadata server and client."""

import pytest

from repro.arch import SPARC_32
from repro.errors import DiscoveryError
from repro.metaserver import MetadataClient, MetadataServer, http_get
from repro.pbio import FormatServer, IOContext, IOField

from tests.schema.conftest import FIGURE_9


@pytest.fixture
def server():
    with MetadataServer() as running:
        yield running


class TestStaticDocuments:
    def test_publish_and_fetch(self, server):
        url = server.publish_schema("/schemas/asdoff.xsd", FIGURE_9)
        assert http_get(url).decode("utf-8") == FIGURE_9

    def test_get_schema_parses(self, server):
        url = server.publish_schema("/schemas/asdoff.xsd", FIGURE_9)
        schema = MetadataClient().get_schema(url)
        assert "ASDOffEvent" in schema.complex_types

    def test_schema_document_object_serialized(self, server):
        from repro.schema import parse_schema

        url = server.publish_schema("/s.xsd", parse_schema(FIGURE_9))
        schema = MetadataClient().get_schema(url)
        assert schema.complex_type("ASDOffEvent").element("off").occurs.count == 5

    def test_missing_document_is_404(self, server):
        with pytest.raises(DiscoveryError, match="404"):
            http_get(server.url_for("/nope.xsd"))

    def test_unpublish_removes(self, server):
        url = server.publish_schema("/s.xsd", FIGURE_9)
        server.unpublish("/s.xsd")
        with pytest.raises(DiscoveryError, match="404"):
            http_get(url)

    def test_non_schema_document_rejected_by_client(self, server):
        url = server.publish_schema("/bad.xsd", "<notaschema/>")
        with pytest.raises(DiscoveryError, match="not a valid schema"):
            MetadataClient().get_schema(url)

    def test_query_string_ignored_for_static_lookup(self, server):
        server.publish_schema("/s.xsd", FIGURE_9)
        body = http_get(server.url_for("/s.xsd?client=gate7"))
        assert b"ASDOffEvent" in body


class TestDynamicGeneration:
    def test_handler_sees_request(self, server):
        def handler(request):
            client = request.path.partition("?client=")[2] or "anonymous"
            return f'<?xml version="1.0"?><client name="{client}"/>'

        server.publish_dynamic("/dyn.xsd", handler)
        body = http_get(server.url_for("/dyn.xsd?client=gate7"))
        assert b'name="gate7"' in body

    def test_handler_failure_is_500(self, server):
        def handler(request):
            raise RuntimeError("boom")

        server.publish_dynamic("/dyn.xsd", handler)
        with pytest.raises(DiscoveryError, match="500"):
            http_get(server.url_for("/dyn.xsd"))

    def test_format_scoping_by_requestor(self, server):
        """The paper's format-scoping: different schema slices per client."""
        full = FIGURE_9
        restricted = FIGURE_9.replace(
            '<xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />',
            "",
        )

        def handler(request):
            if "privileged" in request.path:
                return full
            return restricted

        server.publish_dynamic("/scoped.xsd", handler)
        client = MetadataClient(ttl=0)
        open_schema = client.get_schema(server.url_for("/scoped.xsd?role=public"))
        priv_schema = client.get_schema(server.url_for("/scoped.xsd?role=privileged"))
        assert "eta" not in open_schema.complex_type("ASDOffEvent").element_names()
        assert "eta" in priv_schema.complex_type("ASDOffEvent").element_names()


class TestFormatMetadataOverHTTP:
    def test_resolve_format_by_id(self, server):
        format_server = FormatServer()
        server.attach_format_server(format_server)
        ctx = IOContext(SPARC_32, format_server=format_server)
        fmt = ctx.register_format(
            "point", [IOField("x", "double", 8, 0), IOField("y", "double", 8, 8)]
        )
        host, port = server.address
        fetched = MetadataClient().get_format(f"http://{host}:{port}", fmt.format_id)
        assert fetched.format_id == fmt.format_id

    def test_unknown_format_id_404(self, server):
        server.attach_format_server(FormatServer())
        with pytest.raises(DiscoveryError, match="404"):
            http_get(server.url_for("/formats/" + "00" * 8))

    def test_malformed_hex_id_400(self, server):
        server.attach_format_server(FormatServer())
        with pytest.raises(DiscoveryError, match="400"):
            http_get(server.url_for("/formats/zzzz"))


class TestClientCaching:
    def test_cache_serves_repeat_fetches(self, server):
        url = server.publish_schema("/s.xsd", FIGURE_9)
        client = MetadataClient(ttl=300)
        for _ in range(5):
            client.get_schema(url)
        assert client.fetches == 1
        assert client.hits == 4

    def test_ttl_zero_disables_cache(self, server):
        url = server.publish_schema("/s.xsd", FIGURE_9)
        client = MetadataClient(ttl=0)
        client.get_bytes(url)
        client.get_bytes(url)
        assert client.fetches == 2

    def test_invalidate_forces_refetch(self, server):
        url = server.publish_schema("/s.xsd", FIGURE_9)
        client = MetadataClient(ttl=300)
        client.get_bytes(url)
        client.invalidate(url)
        client.get_bytes(url)
        assert client.fetches == 2

    def test_cache_survives_server_death(self, server):
        """Fault tolerance: cached metadata keeps a client working when
        the metadata server is unreachable."""
        url = server.publish_schema("/s.xsd", FIGURE_9)
        client = MetadataClient(ttl=3600)
        first = client.get_schema(url)
        server.stop()
        second = client.get_schema(url)  # served from cache
        assert second.type_names() == first.type_names()


class TestServerLifecycle:
    def test_unreachable_server_raises_discovery_error(self):
        with MetadataServer() as server:
            host, port = server.address
        with pytest.raises(DiscoveryError, match="cannot reach"):
            http_get(f"http://{host}:{port}/x", timeout=0.5)

    def test_head_request_omits_body(self, server):
        import socket

        from repro.metaserver.http import HTTPRequest, HTTPResponse

        server.publish_schema("/s.xsd", FIGURE_9)
        host, port = server.address
        sock = socket.create_connection((host, port), timeout=5)
        sock.sendall(HTTPRequest("HEAD", "/s.xsd").render())
        # HEAD responses advertise Content-Length but carry no body, so
        # read straight to EOF rather than via the length-driven reader.
        raw = b""
        while True:
            chunk = sock.recv(4096)
            if not chunk:
                break
            raw += chunk
        sock.close()
        response = HTTPResponse.parse(raw)
        assert response.status == 200
        assert response.body == b""
        assert int(response.header("content-length")) == len(FIGURE_9.encode())

    def test_post_rejected_405(self, server):
        import socket

        from repro.metaserver.http import HTTPRequest, HTTPResponse, read_http_message

        host, port = server.address
        sock = socket.create_connection((host, port), timeout=5)
        sock.sendall(HTTPRequest("POST", "/s.xsd", body=b"x").render())
        response = HTTPResponse.parse(read_http_message(sock.recv))
        sock.close()
        assert response.status == 405

    def test_double_start_rejected(self):
        server = MetadataServer()
        server.start()
        try:
            with pytest.raises(DiscoveryError, match="already started"):
                server.start()
        finally:
            server.stop()
