"""The /lineage/* endpoints: both serving planes, client helpers, replication.

The lineage registry is catalog-level state (PROTOCOL §16): a threaded
and an async front end over the same catalog answer identically, the
ancestry documents replicate through ``repro.cluster`` as ordinary
static documents, and replicas answer ``/lineage/`` queries without a
local registry.
"""

import json

import pytest

from repro import aio
from repro.arch import SPARC_32, X86_64
from repro.cluster import ClusterClient
from repro.errors import DiscoveryError
from repro.metaserver import MetadataClient, MetadataServer, http_get
from repro.metaserver.catalog import MetadataCatalog
from repro.pbio import FormatLineage, IOContext, IOField

from tests.cluster.test_node import LiveCluster


def v1_fields(arch):
    return [
        IOField("flight", "string", arch.pointer_size, 0),
        IOField("alt", "integer", 4, arch.pointer_size),
    ]


def v2_fields(arch):
    return v1_fields(arch) + [
        IOField("speed", "double", 8, arch.pointer_size + 8),
    ]


@pytest.fixture
def lineage():
    registry = FormatLineage()
    v1 = IOContext(SPARC_32, lineage=registry).register_format(
        "track", v1_fields(SPARC_32)
    )
    v2 = IOContext(X86_64, lineage=registry).register_format(
        "track", v2_fields(X86_64)
    )
    return registry, v1, v2


@pytest.fixture
def server(lineage):
    registry, _, _ = lineage
    with MetadataServer() as running:
        running.catalog.attach_lineage(registry)
        yield running


class TestThreadedPlane:
    def test_describe_endpoint(self, server, lineage):
        registry, v1, v2 = lineage
        body = http_get(server.url_for(f"/lineage/{v2.format_id.hex()}"))
        document = json.loads(body)
        assert document == registry.describe(v2.format_id)
        assert document["name"] == "track" and document["version"] == 2
        assert document["parent"] == v1.format_id.hex()

    def test_compat_endpoint(self, server, lineage):
        registry, v1, v2 = lineage
        body = http_get(
            server.url_for(
                f"/lineage/{v2.format_id.hex()}/compat/{v1.format_id.hex()}"
            )
        )
        answer = json.loads(body)
        assert answer["relation"] == "projection"
        assert answer["compatible"] and answer["projection_needed"]

    def test_malformed_hex_is_400(self, server):
        with pytest.raises(DiscoveryError, match="400"):
            http_get(server.url_for("/lineage/zzzz"))

    def test_wrong_shape_is_400(self, server, lineage):
        _, v1, _ = lineage
        with pytest.raises(DiscoveryError, match="400"):
            http_get(server.url_for(f"/lineage/{v1.format_id.hex()}/nope"))

    def test_unknown_id_is_404(self, server):
        with pytest.raises(DiscoveryError, match="404"):
            http_get(server.url_for("/lineage/" + "00" * 8))

    def test_without_lineage_attached_is_404(self):
        with MetadataServer() as bare:
            with pytest.raises(DiscoveryError, match="404"):
                http_get(bare.url_for("/lineage/" + "00" * 8))


class TestClientHelpers:
    def test_get_lineage(self, server, lineage):
        registry, _, v2 = lineage
        host, port = server.address
        document = MetadataClient().get_lineage(
            f"http://{host}:{port}", v2.format_id
        )
        assert document == registry.describe(v2.format_id)

    def test_get_compatibility(self, server, lineage):
        _, v1, v2 = lineage
        host, port = server.address
        answer = MetadataClient().get_compatibility(
            f"http://{host}:{port}", v1.format_id, v2.format_id
        )
        assert answer["relation"] == "projection"
        # v1 -> v2 means the receiver defaults the new field.
        assert answer["projection_needed"]

    def test_format_cache_is_bounded(self, server, lineage):
        """The client's parsed-format cache rides the shared LRU."""
        client = MetadataClient(format_capacity=1)
        stats = client.format_cache_stats()
        assert stats["capacity"] == 1 and stats["name"] == "client_format"
        assert "format_cache" in client.stats()


class TestAsyncPlane:
    def test_both_planes_answer_identically(self, arun, lineage):
        registry, _, v2 = lineage
        catalog = MetadataCatalog()
        catalog.attach_lineage(registry)
        path = f"/lineage/{v2.format_id.hex()}"
        with MetadataServer(catalog=catalog) as threaded:
            sync_body = http_get(threaded.url_for(path))

            async def fetch_async_plane():
                async with aio.AsyncMetadataServer(catalog=catalog) as server:
                    async with aio.AsyncMetadataClient() as client:
                        return await client.get(server.url_for(path))

            async_body = arun(fetch_async_plane())
        assert sync_body == async_body
        assert json.loads(sync_body) == registry.describe(v2.format_id)


class TestReplication:
    def test_documents_serve_without_a_registry(self, lineage):
        """A replica holding only the static documents answers /lineage/."""
        registry, _, v2 = lineage
        replica = MetadataCatalog()
        for path, text in registry.documents().items():
            replica.publish_schema(path, text)
        with MetadataServer(catalog=replica) as server:
            body = http_get(server.url_for(f"/lineage/{v2.format_id.hex()}"))
        assert json.loads(body) == registry.describe(v2.format_id)

    def test_static_documents_win_over_attached_registry(self, lineage):
        registry, _, v2 = lineage
        catalog = MetadataCatalog()
        catalog.attach_lineage(registry)
        path = f"/lineage/{v2.format_id.hex()}"
        catalog.publish_schema(path, '{"pinned": true}')
        with MetadataServer(catalog=catalog) as server:
            assert json.loads(http_get(server.url_for(path))) == {"pinned": True}

    def test_cluster_replicates_lineage_documents(self, lineage):
        registry, _, v2 = lineage
        path = f"/lineage/{v2.format_id.hex()}"
        with LiveCluster(1, 2) as cluster:
            client = ClusterClient(cluster.cluster_map, write_quorum=2)
            for doc_path, text in sorted(registry.documents().items()):
                assert client.publish(doc_path, text).ok
            # Every replica serves the ancestry document, registry-free.
            for server in cluster.servers:
                body = http_get(server.url_for(path))
                assert json.loads(body) == registry.describe(v2.format_id)
