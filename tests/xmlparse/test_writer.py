"""Unit tests for XML serialization (repro.xmlparse.writer)."""

from repro.xmlparse import (
    escape_attribute,
    escape_text,
    parse_document,
    write_document,
)


class TestEscaping:
    def test_text_escapes_markup(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_text_keeps_quotes(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('a "b" <c>') == "a &quot;b&quot; &lt;c&gt;"


class TestRoundTrip:
    def test_simple_roundtrip(self):
        source = '<?xml version="1.0"?><a x="1"><b>text</b><c/></a>'
        root = parse_document(source)
        assert write_document(root) == source

    def test_special_characters_roundtrip(self):
        root = parse_document('<a x="q&quot;&lt;">1 &amp; 2 &lt; 3</a>')
        text = write_document(root)
        again = parse_document(text)
        assert again.text == root.text == "1 & 2 < 3"
        assert again.get("x") == 'q"<'

    def test_unicode_roundtrip(self):
        root = parse_document("<a>héllo \U0001F600</a>")
        again = parse_document(write_document(root))
        assert again.text == "héllo \U0001F600"

    def test_empty_element_collapses(self):
        root = parse_document("<a></a>")
        assert write_document(root, declaration=False) == "<a/>"

    def test_declaration_optional(self):
        root = parse_document("<a/>")
        assert write_document(root, declaration=False) == "<a/>"
        assert write_document(root).startswith("<?xml")


class TestPrettyPrinting:
    def test_indented_output_reparses_equivalently(self):
        root = parse_document('<s><t name="x" type="y"/><u><v/></u></s>')
        pretty = write_document(root, indent="  ")
        assert "\n  <t" in pretty
        again = parse_document(pretty)
        assert [c.tag for c in again.children] == ["t", "u"]
        assert again.find("t").get("name") == "x"

    def test_indent_depth_grows(self):
        root = parse_document("<a><b><c/></b></a>")
        pretty = write_document(root, indent="    ")
        assert "\n        <c/>" in pretty
