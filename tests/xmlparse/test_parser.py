"""Unit tests for the XML pull parser (repro.xmlparse.parser)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlparse import (
    CDataEvent,
    CharactersEvent,
    CommentEvent,
    EndElementEvent,
    ProcessingInstructionEvent,
    StartElementEvent,
    XMLDeclEvent,
    PullParser,
    parse_events,
)


def events_of_type(source, cls):
    return [e for e in parse_events(source) if isinstance(e, cls)]


class TestBasicDocuments:
    def test_minimal_document(self):
        events = parse_events("<a/>")
        assert isinstance(events[0], StartElementEvent)
        assert events[0].name == "a"
        assert events[0].empty
        assert isinstance(events[1], EndElementEvent)

    def test_xml_declaration(self):
        events = parse_events('<?xml version="1.0" encoding="UTF-8"?><a/>')
        decl = events[0]
        assert isinstance(decl, XMLDeclEvent)
        assert decl.version == "1.0"
        assert decl.encoding == "UTF-8"

    def test_declaration_missing_version_rejected(self):
        with pytest.raises(XMLSyntaxError, match="version"):
            parse_events('<?xml encoding="UTF-8"?><a/>')

    def test_nested_elements_in_order(self):
        events = parse_events("<a><b><c/></b><d/></a>")
        names = [e.name for e in events if isinstance(e, StartElementEvent)]
        assert names == ["a", "b", "c", "d"]

    def test_character_data(self):
        (chars,) = events_of_type("<a>hello world</a>", CharactersEvent)
        assert chars.text == "hello world"

    def test_attributes_preserve_order(self):
        (start,) = events_of_type('<a z="1" y="2" x="3"/>', StartElementEvent)
        assert start.attributes == (("z", "1"), ("y", "2"), ("x", "3"))

    def test_single_quoted_attributes(self):
        (start,) = events_of_type("<a x='v'/>", StartElementEvent)
        assert start.attributes == (("x", "v"),)

    def test_whitespace_inside_tags_tolerated(self):
        events = parse_events('<a  x = "1"  ></a >')
        assert events[0].attributes == (("x", "1"),)


class TestEntities:
    def test_predefined_entities_in_text(self):
        (chars,) = events_of_type("<a>&lt;&gt;&amp;&apos;&quot;</a>", CharactersEvent)
        assert chars.text == "<>&'\""

    def test_decimal_character_reference(self):
        (chars,) = events_of_type("<a>&#65;</a>", CharactersEvent)
        assert chars.text == "A"

    def test_hex_character_reference(self):
        (chars,) = events_of_type("<a>&#x41;&#x1F600;</a>", CharactersEvent)
        assert chars.text == "A\U0001F600"

    def test_entities_in_attribute_values(self):
        (start,) = events_of_type('<a x="a&amp;b&#33;"/>', StartElementEvent)
        assert start.attributes == (("x", "a&b!"),)

    def test_undefined_entity_rejected(self):
        with pytest.raises(XMLSyntaxError, match="undefined entity"):
            parse_events("<a>&nbsp;</a>")

    def test_unterminated_entity_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unterminated entity"):
            parse_events("<a>&amp</a>")

    def test_illegal_character_reference_rejected(self):
        with pytest.raises(XMLSyntaxError, match="not a legal XML character"):
            parse_events("<a>&#0;</a>")

    def test_malformed_character_reference_rejected(self):
        with pytest.raises(XMLSyntaxError, match="invalid character reference"):
            parse_events("<a>&#xZZ;</a>")


class TestStructuralChecks:
    def test_mismatched_tags_rejected(self):
        with pytest.raises(XMLSyntaxError, match="mismatched end tag"):
            parse_events("<a><b></a></b>")

    def test_unclosed_root_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unexpected end"):
            parse_events("<a><b></b>")

    def test_content_after_root_rejected(self):
        with pytest.raises(XMLSyntaxError, match="after document root"):
            parse_events("<a/><b/>")

    def test_text_before_root_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse_events("stray text <a/>")

    def test_empty_document_rejected(self):
        with pytest.raises(XMLSyntaxError, match="no root element"):
            parse_events("   ")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(XMLSyntaxError, match="duplicate attribute"):
            parse_events('<a x="1" x="2"/>')

    def test_angle_bracket_in_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError, match="not allowed in attribute"):
            parse_events('<a x="a<b"/>')

    def test_cdata_end_in_text_rejected(self):
        with pytest.raises(XMLSyntaxError, match="]]>"):
            parse_events("<a>bad ]]> text</a>")

    def test_missing_attribute_space_rejected(self):
        with pytest.raises(XMLSyntaxError, match="whitespace"):
            parse_events('<a x="1"y="2"/>')

    def test_parser_is_single_use(self):
        parser = PullParser("<a/>")
        list(parser.events())
        with pytest.raises(XMLSyntaxError, match="single-use"):
            list(parser.events())


class TestCommentsPIsCData:
    def test_comment_text(self):
        (comment,) = events_of_type("<a><!-- hi there --></a>", CommentEvent)
        assert comment.text == " hi there "

    def test_comment_before_root(self):
        events = parse_events("<!-- prolog --><a/>")
        assert isinstance(events[0], CommentEvent)

    def test_double_hyphen_in_comment_rejected(self):
        with pytest.raises(XMLSyntaxError, match="--"):
            parse_events("<a><!-- bad -- comment --></a>")

    def test_processing_instruction(self):
        (pi,) = events_of_type('<a><?proc some data?></a>', ProcessingInstructionEvent)
        assert pi.target == "proc"
        assert pi.data == "some data"

    def test_pi_target_xml_rejected(self):
        with pytest.raises(XMLSyntaxError, match="may not be 'xml'"):
            parse_events("<a><?xml bad?></a>")

    def test_cdata_passes_markup_verbatim(self):
        (cdata,) = events_of_type("<a><![CDATA[<not> &markup;]]></a>", CDataEvent)
        assert cdata.text == "<not> &markup;"

    def test_doctype_is_skipped(self):
        events = parse_events('<!DOCTYPE a [<!ELEMENT a EMPTY>]><a/>')
        assert isinstance(events[0], StartElementEvent)


class TestPositions:
    def test_line_and_column_tracking(self):
        source = "<a>\n  <b/>\n</a>"
        starts = events_of_type(source, StartElementEvent)
        assert (starts[0].line, starts[0].column) == (1, 1)
        assert (starts[1].line, starts[1].column) == (2, 3)

    def test_error_carries_position(self):
        try:
            parse_events("<a>\n<b></c></a>")
        except XMLSyntaxError as exc:
            assert exc.line == 2
        else:
            pytest.fail("expected XMLSyntaxError")

    def test_crlf_normalized(self):
        (chars,) = events_of_type("<a>x\r\ny</a>", CharactersEvent)
        assert chars.text == "x\ny"

    def test_attribute_value_newlines_normalized_to_spaces(self):
        (start,) = events_of_type('<a x="one\ntwo"/>', StartElementEvent)
        assert start.attributes == (("x", "one two"),)


class TestPaperSchemaDocument:
    """The paper's own Figure 6 schema must parse cleanly."""

    FIGURE_6 = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
            targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:annotation>
    <xsd:documentation>
      ASDOff
    </xsd:documentation>
  </xsd:annotation>
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" />
    <xsd:element name="eta" type="xsd:unsigned-long" />
  </xsd:complexType>
</xsd:schema>
"""

    def test_parses(self):
        starts = events_of_type(self.FIGURE_6, StartElementEvent)
        names = [s.name for s in starts]
        assert names[0] == "xsd:schema"
        assert names.count("xsd:element") == 8

    def test_element_attributes(self):
        starts = events_of_type(self.FIGURE_6, StartElementEvent)
        first_field = [s for s in starts if s.name == "xsd:element"][0]
        assert dict(first_field.attributes) == {"name": "cntrID", "type": "xsd:string"}
