"""Unit tests for the element tree and namespace handling."""

import pytest

from repro.errors import XMLError
from repro.xmlparse import parse_document
from repro.xmlparse.namespaces import NamespaceScope, split_qname


class TestTreeBuilding:
    def test_root_and_children(self):
        root = parse_document("<a><b/><c><d/></c></a>")
        assert root.tag == "a"
        assert [c.tag for c in root.children] == ["b", "c"]
        assert root.children[1].children[0].tag == "d"

    def test_text_accumulates_across_cdata(self):
        root = parse_document("<a>one <![CDATA[<two>]]> three</a>")
        assert root.text == "one <two> three"

    def test_find_and_findall(self):
        root = parse_document("<a><b i='1'/><c/><b i='2'/></a>")
        assert root.find("b").get("i") == "1"
        assert [e.get("i") for e in root.findall("b")] == ["1", "2"]
        assert root.find("zzz") is None

    def test_iter_is_depth_first(self):
        root = parse_document("<a><b><c/></b><d/></a>")
        assert [e.tag for e in root.iter()] == ["a", "b", "c", "d"]

    def test_require_missing_attribute_raises(self):
        root = parse_document("<a/>")
        with pytest.raises(XMLError, match="missing required attribute"):
            root.require("name")

    def test_len_and_iteration(self):
        root = parse_document("<a><b/><c/></a>")
        assert len(root) == 2
        assert [child.tag for child in root] == ["b", "c"]

    def test_line_numbers_recorded(self):
        root = parse_document("<a>\n<b/></a>")
        assert root.line == 1
        assert root.children[0].line == 2


class TestNamespaceResolution:
    DOC = (
        '<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema" '
        'xmlns="http://example.com/default">'
        '<xsd:element name="f" type="xsd:string"/>'
        "<plain/>"
        "</xsd:schema>"
    )

    def test_prefixed_element_namespace(self):
        root = parse_document(self.DOC)
        assert root.namespace == "http://www.w3.org/1999/XMLSchema"
        assert root.local == "schema"

    def test_default_namespace_applies_to_unprefixed(self):
        root = parse_document(self.DOC)
        plain = root.find("plain")
        assert plain.namespace == "http://example.com/default"

    def test_attribute_value_qname_resolution(self):
        root = parse_document(self.DOC)
        element = root.find("element")
        uri, local = element.resolve_value_qname(element.get("type"))
        assert uri == "http://www.w3.org/1999/XMLSchema"
        assert local == "string"

    def test_unprefixed_value_resolves_to_none_namespace(self):
        root = parse_document('<a xmlns:x="urn:x"><b t="UserType"/></a>')
        uri, local = root.find("b").resolve_value_qname("UserType")
        assert uri is None
        assert local == "UserType"

    def test_unbound_prefix_in_value_raises(self):
        root = parse_document("<a><b t='nope:Type'/></a>")
        with pytest.raises(XMLError, match="not bound"):
            root.find("b").resolve_value_qname("nope:Type")

    def test_unbound_element_prefix_raises(self):
        with pytest.raises(XMLError, match="not bound"):
            parse_document("<bad:a/>")

    def test_nested_scopes_shadow(self):
        root = parse_document(
            '<a xmlns:p="urn:outer"><b xmlns:p="urn:inner"><p:c/></b><p:d/></a>'
        )
        inner = root.children[0].children[0]
        outer = root.children[1]
        assert inner.namespace == "urn:inner"
        assert outer.namespace == "urn:outer"


class TestNamespaceScopeUnit:
    def test_split_qname(self):
        assert split_qname("a:b") == ("a", "b")
        assert split_qname("plain") == (None, "plain")

    def test_split_rejects_double_colon(self):
        with pytest.raises(XMLError):
            split_qname("a:b:c")

    def test_split_rejects_empty_halves(self):
        with pytest.raises(XMLError):
            split_qname(":b")

    def test_xml_prefix_always_bound(self):
        scope = NamespaceScope()
        assert scope.resolve("xml") == "http://www.w3.org/XML/1998/namespace"

    def test_rebinding_xml_prefix_rejected(self):
        scope = NamespaceScope()
        with pytest.raises(XMLError, match="may not be rebound"):
            scope.push((("xmlns:xml", "urn:evil"),))

    def test_empty_prefix_binding_rejected(self):
        scope = NamespaceScope()
        with pytest.raises(XMLError):
            scope.push((("xmlns:p", ""),))

    def test_pop_underflow_rejected(self):
        scope = NamespaceScope()
        with pytest.raises(XMLError, match="underflow"):
            scope.pop()

    def test_default_namespace_can_be_undeclared(self):
        scope = NamespaceScope()
        scope.push((("xmlns", "urn:d"),))
        assert scope.resolve(None) == "urn:d"
        scope.push((("xmlns", ""),))
        assert scope.resolve(None) is None
