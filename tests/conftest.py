"""Top-level shared fixtures: architecture contexts used across suites."""

import asyncio

import pytest

from repro.arch import ALPHA, SPARC_32, SPARC_64, X86_32, X86_64
from repro.obs import Registry, Tracer, set_registry, set_tracer, set_wire_tracing
from repro.pbio import IOContext

ALL_ARCHES = [X86_32, X86_64, SPARC_32, SPARC_64, ALPHA]


@pytest.fixture(params=ALL_ARCHES, ids=[a.name for a in ALL_ARCHES])
def any_arch(request):
    """Parametrize a test over every modeled architecture."""
    return request.param


@pytest.fixture
def sparc_context():
    """A big-endian ILP32 endpoint (the paper's measurement machine)."""
    return IOContext(SPARC_32)


@pytest.fixture
def x86_context():
    """A little-endian LP64 endpoint (a modern host)."""
    return IOContext(X86_64)


@pytest.fixture
def arun():
    """Drive a coroutine to completion with a global deadline.

    Same contract as the async-plane suite's fixture (no pytest-asyncio
    dependency), available repo-wide for cross-plane tests.
    """
    def runner(coro, timeout=30.0):
        return asyncio.run(asyncio.wait_for(coro, timeout))

    return runner


@pytest.fixture
def fresh_registry():
    """Install an isolated metrics registry (and seeded tracer) for one test.

    The default registry is process-global, so observability tests swap
    in a fresh one and restore the original afterwards; wire tracing is
    always forced back off.
    """
    from repro.obs import metrics as metrics_mod
    from repro.obs import trace as trace_mod

    previous_registry = metrics_mod.get_registry()
    previous_tracer = trace_mod.get_tracer()
    registry = set_registry(Registry())
    set_tracer(Tracer(seed=1204))
    set_wire_tracing(False)
    try:
        yield registry
    finally:
        set_registry(previous_registry)
        set_tracer(previous_tracer)
        set_wire_tracing(False)
