"""Top-level shared fixtures: architecture contexts used across suites."""

import pytest

from repro.arch import ALPHA, SPARC_32, SPARC_64, X86_32, X86_64
from repro.pbio import IOContext

ALL_ARCHES = [X86_32, X86_64, SPARC_32, SPARC_64, ALPHA]


@pytest.fixture(params=ALL_ARCHES, ids=[a.name for a in ALL_ARCHES])
def any_arch(request):
    """Parametrize a test over every modeled architecture."""
    return request.param


@pytest.fixture
def sparc_context():
    """A big-endian ILP32 endpoint (the paper's measurement machine)."""
    return IOContext(SPARC_32)


@pytest.fixture
def x86_context():
    """A little-endian LP64 endpoint (a modern host)."""
    return IOContext(X86_64)
