"""Spawn targets for the multi-process tests.

These live in a plain helper module (no pytest import) so
``multiprocessing``'s spawn start method can unpickle them in the child
by importing ``tests.mp._procs`` — the test modules themselves are
rewritten by pytest's assertion hook and are not safe spawn targets.
"""

from __future__ import annotations


def shm_echo(uri: str) -> None:
    """Attach to ``uri`` and echo every frame until the peer closes."""
    from repro.errors import ChannelClosedError, TransportTimeoutError
    from repro.mp.shm import ShmChannel

    channel = ShmChannel.attach(uri)
    try:
        while True:
            try:
                message = channel.recv(timeout=10.0)
            except (ChannelClosedError, TransportTimeoutError):
                break
            channel.send(message)
    finally:
        channel.close()


def shm_sum_lengths(uri: str) -> None:
    """Consume frames, replying with the running byte total per frame."""
    from repro.errors import ChannelClosedError, TransportTimeoutError
    from repro.mp.shm import ShmChannel

    channel = ShmChannel.attach(uri)
    total = 0
    try:
        while True:
            try:
                view = channel.recv_view(timeout=10.0)
            except (ChannelClosedError, TransportTimeoutError):
                break
            total += len(view)
            channel.send(str(total).encode())
    finally:
        channel.close()
