"""Unit tests for the SPSC shared-memory ring buffer (PROTOCOL §15.1)."""

import threading

import pytest

from repro.errors import ChannelClosedError, TransportError, TransportTimeoutError
from repro.mp.ring import DEFAULT_CAPACITY, RingBuffer


@pytest.fixture
def ring():
    """A producer/consumer mapping pair over one 4 KiB ring."""
    producer = RingBuffer.create(4096)
    consumer = RingBuffer.attach(producer.name)
    try:
        yield producer, consumer
    finally:
        consumer.detach()
        producer.detach()
        producer.unlink()


class TestFraming:
    def test_roundtrip(self, ring):
        producer, consumer = ring
        producer.push((b"hello",))
        assert consumer.pop(timeout=1.0) == b"hello"

    def test_multipart_push_is_one_frame(self, ring):
        producer, consumer = ring
        producer.push((b"abc", b"", b"def"))
        assert consumer.pop(timeout=1.0) == b"abcdef"

    def test_empty_frame(self, ring):
        producer, consumer = ring
        producer.push((b"",))
        assert consumer.pop(timeout=1.0) == b""

    def test_order_preserved(self, ring):
        producer, consumer = ring
        for i in range(100):
            producer.push((b"m%03d" % i,))
        for i in range(100):
            assert consumer.pop(timeout=1.0) == b"m%03d" % i

    def test_unaligned_lengths_stay_framed(self, ring):
        producer, consumer = ring
        for size in (1, 2, 3, 5, 7, 13, 63, 255):
            producer.push((b"x" * size,))
            assert consumer.pop(timeout=1.0) == b"x" * size

    def test_wrap_around_many_laps(self, ring):
        producer, consumer = ring
        message = b"y" * 1000  # ~4 frames per lap of a 4 KiB ring
        for i in range(50):
            producer.push((message,))
            assert consumer.pop(timeout=1.0) == message
        assert producer.stats.wraps > 0
        assert consumer.stats.wraps > 0

    def test_largest_frame_accepted(self, ring):
        producer, consumer = ring
        biggest = b"z" * (4096 // 2 - 8)
        producer.push((biggest,))
        assert consumer.pop(timeout=1.0) == biggest

    def test_oversized_frame_rejected(self, ring):
        producer, _ = ring
        with pytest.raises(TransportError, match="exceeds"):
            producer.push((b"z" * (4096 // 2 - 7),))


class TestBorrowedViews:
    def test_borrow_reads_ring_memory(self, ring):
        producer, consumer = ring
        producer.push((b"borrowed",))
        view = consumer.pop(timeout=1.0, copy=False)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"borrowed"

    def test_borrow_defers_tail_until_next_pop(self, ring):
        producer, consumer = ring
        producer.push((b"first",))
        view = consumer.pop(timeout=1.0, copy=False)
        # The loaned frame is still unconsumed from the producer's view.
        assert consumer.depth() > 0
        assert bytes(view) == b"first"
        producer.push((b"second",))
        assert consumer.pop(timeout=1.0) == b"second"

    def test_release_borrow_returns_space(self, ring):
        producer, consumer = ring
        producer.push((b"loan",))
        consumer.pop(timeout=1.0, copy=False)
        consumer.release_borrow()
        assert consumer.depth() == 0

    def test_invalidate_borrow_revokes_view(self, ring):
        producer, consumer = ring
        producer.push((b"stale-to-be",))
        view = consumer.pop(timeout=1.0, copy=False)
        consumer.invalidate_borrow()
        with pytest.raises(ValueError):
            bytes(view)


class TestLifecycle:
    def test_pop_timeout_on_empty_ring(self, ring):
        _, consumer = ring
        with pytest.raises(TransportTimeoutError):
            consumer.pop(timeout=0.05)

    def test_push_timeout_on_full_ring(self, ring):
        producer, _ = ring
        chunk = b"f" * 1024
        with pytest.raises(TransportTimeoutError):
            for _ in range(10):  # capacity is 4 KiB: must fill within 4
                producer.push((chunk,), timeout=0.05)

    def test_producer_close_drains_then_eof(self, ring):
        producer, consumer = ring
        producer.push((b"last-words",))
        producer.close_producer()
        assert consumer.pop(timeout=1.0) == b"last-words"
        with pytest.raises(ChannelClosedError):
            consumer.pop(timeout=1.0)

    def test_consumer_close_fails_push_fast(self, ring):
        producer, consumer = ring
        consumer.close_consumer()
        with pytest.raises(ChannelClosedError):
            producer.push((b"undeliverable",))

    def test_blocked_push_unblocked_by_consumption(self, ring):
        producer, consumer = ring
        filler = b"f" * 1500
        producer.push((filler,))
        producer.push((filler,))  # ring now nearly full
        done = threading.Event()

        def pusher():
            producer.push((filler,), timeout=5.0)
            done.set()

        thread = threading.Thread(target=pusher, daemon=True)
        thread.start()
        assert consumer.pop(timeout=1.0) == filler
        assert done.wait(timeout=5.0)
        thread.join(timeout=5.0)

    def test_attach_validates_magic(self):
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(create=True, size=8192)
        try:
            with pytest.raises(TransportError, match="is not a ring"):
                RingBuffer.attach(block.name)
        finally:
            block.close()
            block.unlink()

    def test_capacity_validation(self):
        with pytest.raises(TransportError):
            RingBuffer.create(100)  # below the 4 KiB floor
        with pytest.raises(TransportError):
            RingBuffer.create(4098)  # not a multiple of 4

    def test_default_capacity_sane(self):
        assert DEFAULT_CAPACITY >= 1 << 20

    def test_detach_is_idempotent(self):
        ring = RingBuffer.create(4096)
        ring.detach()
        ring.detach()
        ring.unlink()
        ring.unlink()


class TestStats:
    def test_counters_track_frames_and_bytes(self, ring):
        producer, consumer = ring
        producer.push((b"12345",))
        producer.push((b"678",))
        consumer.pop(timeout=1.0)
        consumer.pop(timeout=1.0)
        assert producer.stats.frames == 2
        assert producer.stats.bytes == 8
        assert consumer.stats.frames == 2
        assert consumer.stats.bytes == 8
        assert set(producer.stats.as_dict()) == {
            "frames", "bytes", "stalls", "wraps",
        }

    def test_depth_tracks_unconsumed_bytes(self, ring):
        producer, consumer = ring
        assert producer.depth() == 0
        producer.push((b"x" * 100,))
        assert producer.depth() == 104  # u32 length prefix + payload
        consumer.pop(timeout=1.0)
        assert consumer.depth() == 0
