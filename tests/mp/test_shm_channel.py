"""Tests for :class:`repro.mp.shm.ShmChannel` (PROTOCOL §15.2)."""

from multiprocessing import get_context

import pytest

from repro.errors import ChannelClosedError, TransportError
from repro.mp.shm import ShmChannel, ShmEndpoint
from repro.transport import connect_channel, listen, set_recv_view_debug

from tests.mp import _procs

_CTX = get_context("spawn")


@pytest.fixture
def pair():
    end_a, end_b = ShmChannel.pair(8192)
    try:
        yield end_a, end_b
    finally:
        end_a.close()
        end_b.close()


class TestRoundtrip:
    def test_send_recv_both_directions(self, pair):
        end_a, end_b = pair
        end_a.send(b"a-to-b")
        end_b.send(b"b-to-a")
        assert end_b.recv(timeout=1.0) == b"a-to-b"
        assert end_a.recv(timeout=1.0) == b"b-to-a"

    def test_send_many_one_frame_each(self, pair):
        end_a, end_b = pair
        count = end_a.send_many([b"one", b"two", b"three"])
        assert count == 3
        assert [end_b.recv(timeout=1.0) for _ in range(3)] == [
            b"one", b"two", b"three",
        ]

    def test_send_batch_is_single_frame(self, pair):
        end_a, end_b = pair
        total = end_a.send_batch([b"prelude", b"", b"columns", b"heap"])
        assert total == len(b"preludecolumnsheap")
        assert end_b.recv(timeout=1.0) == b"preludecolumnsheap"

    def test_recv_view_borrows_ring_memory(self, pair):
        end_a, end_b = pair
        end_a.send(b"view-me")
        view = end_b.recv_view(timeout=1.0)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"view-me"

    def test_stats_and_depths_exposed(self, pair):
        end_a, end_b = pair
        end_a.send(b"x" * 10)
        stats = end_a.stats()
        assert stats["send"]["frames"] == 1
        assert stats["send"]["bytes"] == 10
        assert end_a.depths()["send"] > 0
        end_b.recv(timeout=1.0)
        assert end_b.depths()["recv"] == 0


class TestRecvViewDebug:
    def test_stale_view_revoked_on_next_recv(self, pair):
        end_a, end_b = pair
        set_recv_view_debug(True)
        try:
            end_a.send(b"first")
            end_a.send(b"second")
            first = end_b.recv_view(timeout=1.0)
            assert bytes(first) == b"first"
            second = end_b.recv_view(timeout=1.0)
            assert bytes(second) == b"second"
            with pytest.raises(ValueError):
                bytes(first)
        finally:
            set_recv_view_debug(False)

    def test_default_mode_keeps_alias_semantics(self, pair):
        end_a, end_b = pair
        end_a.send(b"first")
        first = end_b.recv_view(timeout=1.0)
        end_a.send(b"second")
        end_b.recv(timeout=1.0)
        # Without debug mode the stale view still reads *something* (the
        # documented hazard); it must not raise.
        bytes(first)


class TestLifecycle:
    def test_send_on_closed_channel(self):
        end_a, end_b = ShmChannel.pair(8192)
        end_a.close()
        with pytest.raises(ChannelClosedError):
            end_a.send(b"late")
        with pytest.raises(ChannelClosedError):
            end_a.recv(timeout=0.1)
        end_b.close()

    def test_peer_close_drains_then_eof(self):
        end_a, end_b = ShmChannel.pair(8192)
        end_a.send(b"parting-gift")
        end_a.close()
        assert end_b.recv(timeout=1.0) == b"parting-gift"
        with pytest.raises(ChannelClosedError):
            end_b.recv(timeout=1.0)
        with pytest.raises(ChannelClosedError):
            end_b.send(b"to-nobody")
        end_b.close()

    def test_close_is_idempotent(self):
        end_a, end_b = ShmChannel.pair(8192)
        end_b.close()
        end_b.close()
        end_a.close()
        end_a.close()
        assert end_a.closed and end_b.closed


class TestEndpoint:
    def test_uri_roundtrip(self):
        endpoint = ShmEndpoint(a2b="blk_a", b2a="blk_b", capacity=16384)
        assert endpoint.uri() == "shm://blk_a,blk_b,16384"
        assert ShmEndpoint.parse(endpoint.uri()) == endpoint

    def test_parse_rejects_wrong_scheme(self):
        with pytest.raises(TransportError, match="not an shm://"):
            ShmEndpoint.parse("tcp://127.0.0.1:80")

    @pytest.mark.parametrize("uri", [
        "shm://only_one", "shm://a,b", "shm://a,b,notanumber", "shm://a,b,4096,x",
    ])
    def test_parse_rejects_malformed(self, uri):
        with pytest.raises(TransportError, match="malformed"):
            ShmEndpoint.parse(uri)


class TestConnectChannel:
    def test_shm_scheme_attaches_peer_end(self):
        end_a, endpoint = ShmChannel.create(8192)
        end_b = connect_channel(endpoint.uri())
        try:
            end_b.send(b"dialed-by-uri")
            assert end_a.recv(timeout=1.0) == b"dialed-by-uri"
        finally:
            end_b.close()
            end_a.close()

    def test_tcp_scheme_dials_socket(self):
        listener = listen()
        host, port = listener.address
        client = connect_channel(f"tcp://{host}:{port}")
        server = listener.accept(timeout=5)
        try:
            client.send(b"over-tcp")
            assert server.recv(timeout=5) == b"over-tcp"
        finally:
            client.close()
            server.close()
            listener.close()

    @pytest.mark.parametrize("endpoint", [
        "tcp://nohost", "tcp://:1234", "tcp://h:notaport", "udp://h:1",
    ])
    def test_rejects_malformed_endpoints(self, endpoint):
        with pytest.raises(TransportError):
            connect_channel(endpoint)


class TestCrossProcess:
    def test_echo_through_spawned_child(self):
        end_a, endpoint = ShmChannel.create(1 << 16)
        child = _CTX.Process(target=_procs.shm_echo, args=(endpoint.uri(),))
        child.start()
        try:
            for i in range(20):
                message = b"ping-%02d" % i + b"." * (i * 37)
                end_a.send(message)
                assert end_a.recv(timeout=10.0) == message
        finally:
            end_a.close()
            child.join(timeout=10)
            assert child.exitcode == 0

    def test_child_recv_view_sees_every_byte(self):
        end_a, endpoint = ShmChannel.create(1 << 16)
        child = _CTX.Process(
            target=_procs.shm_sum_lengths, args=(endpoint.uri(),)
        )
        child.start()
        sent = 0
        try:
            for size in (0, 1, 100, 4096):
                end_a.send(b"z" * size)
                sent += size
                assert end_a.recv(timeout=10.0) == str(sent).encode()
        finally:
            end_a.close()
            child.join(timeout=10)
            assert child.exitcode == 0


class TestObservability:
    def test_shm_plane_counters_and_gauges(self, fresh_registry):
        end_a, end_b = ShmChannel.pair(8192)
        try:
            end_a.send(b"x" * 64)
            assert end_b.recv(timeout=1.0) == b"x" * 64
        finally:
            end_a.close()
            end_b.close()
        snap = fresh_registry.snapshot()
        frames = snap["transport_frames_total"]
        assert frames[(("plane", "shm"), ("direction", "send"))] == 1
        assert frames[(("plane", "shm"), ("direction", "recv"))] == 1
        sent = snap["transport_bytes_total"][
            (("plane", "shm"), ("direction", "send"))
        ]
        assert sent == 64
        depth = snap["shm_ring_depth_bytes"]
        assert (("direction", "send"),) in depth
        assert depth[(("direction", "recv"),)] == 0
