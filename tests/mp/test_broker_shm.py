"""Event-backbone fan-out over shared memory (PROTOCOL §15.2).

The broker protocol is channel-agnostic; these tests attach co-located
subscribers/publishers to a :class:`~repro.events.remote.BrokerServer`
over :class:`~repro.mp.shm.ShmChannel` pairs instead of TCP sockets —
the zero-syscall path for same-host event delivery.
"""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.events.remote import BrokerServer, RemoteBackboneClient
from repro.mp.shm import ShmChannel
from repro.pbio import IOContext, IOField


def track_fields(arch):
    return [
        IOField("flight", "string", arch.pointer_size, 0),
        IOField("alt", "integer", 4, arch.pointer_size),
    ]


@pytest.fixture
def broker():
    with BrokerServer() as running:
        yield running


def attach_shm_client(broker, arch, register=True):
    """A broker client whose transport is a shared-memory pair."""
    ours, theirs = ShmChannel.pair(1 << 16)
    broker.serve_channel(theirs)
    context = IOContext(arch)
    if register:
        context.register_format("track", track_fields(arch))
    return RemoteBackboneClient(ours, context)


class TestShmBackbone:
    def test_publish_subscribe_over_shm(self, broker):
        subscriber = attach_shm_client(broker, X86_64, register=False)
        subscriber.subscribe("flights.*")
        publisher_client = attach_shm_client(broker, SPARC_32)
        publisher = publisher_client.publisher("flights.atl")
        publisher.publish("track", {"flight": "DL1", "alt": 31000})
        event = subscriber.next_event(timeout=5)
        assert event.stream == "flights.atl"
        assert event.values == {"flight": "DL1", "alt": 31000}
        subscriber.close()
        publisher_client.close()

    def test_shm_and_tcp_clients_share_streams(self, broker):
        """A TCP publisher's events reach an shm subscriber unchanged."""
        shm_subscriber = attach_shm_client(broker, X86_64, register=False)
        shm_subscriber.subscribe("mixed")
        context = IOContext(SPARC_32)
        context.register_format("track", track_fields(SPARC_32))
        tcp_client = RemoteBackboneClient.connect(*broker.address, context)
        tcp_client.publisher("mixed").publish(
            "track", {"flight": "TCP1", "alt": 100}
        )
        event = shm_subscriber.next_event(timeout=5)
        assert event.values == {"flight": "TCP1", "alt": 100}
        shm_subscriber.close()
        tcp_client.close()

    def test_fan_out_to_many_shm_subscribers(self, broker):
        subscribers = [
            attach_shm_client(broker, X86_64, register=False) for _ in range(3)
        ]
        for subscriber in subscribers:
            subscriber.subscribe("wide")
        publisher_client = attach_shm_client(broker, SPARC_32)
        publisher = publisher_client.publisher("wide")
        for i in range(10):
            publisher.publish("track", {"flight": f"F{i}", "alt": i})
        for subscriber in subscribers:
            alts = [subscriber.next_event(timeout=5).values["alt"] for _ in range(10)]
            assert alts == list(range(10))
        for subscriber in subscribers:
            subscriber.close()
        publisher_client.close()

    def test_connections_served_counts_shm_attaches(self, broker):
        before = broker.connections_served
        client = attach_shm_client(broker, X86_64)
        assert broker.connections_served == before + 1
        client.close()
