"""Tests for :class:`repro.mp.pool.WorkerPool` (PROTOCOL §15.3).

Every test that spawns workers uses small pools and short supervision
ticks; the chaos test replays the repo-wide ``CHAOS_SEED`` so the
kill/respawn schedule is identical on every run.
"""

import json
import socket
import time

import pytest

from repro.errors import DiscoveryError, MetadataHTTPError, TransportError
from repro.faults import PoolFaultPlan
from repro.metaserver.client import MetadataClient, http_get, http_post
from repro.mp import pool as pool_mod
from repro.mp.pool import PoolStatus, WorkerPool, WorkerStatus, reuseport_available
from repro.transport.tcp import TCPListener

from tests.golden import vectors

#: Same deterministic chaos seed the cluster suite replays.
CHAOS_SEED = 20_260_807

requires_reuseport = pytest.mark.skipif(
    not reuseport_available(), reason="SO_REUSEPORT unavailable on this platform"
)


def both_modes():
    """Parametrize over serving modes, skipping reuseport where absent."""
    return pytest.mark.parametrize(
        "mode",
        [
            pytest.param("reuseport", marks=requires_reuseport),
            "handoff",
        ],
    )


def wait_until(predicate, timeout=10.0, interval=0.02, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class TestValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(DiscoveryError, match=">= 1 worker"):
            WorkerPool(workers=0)

    def test_rejects_unknown_plane(self):
        with pytest.raises(DiscoveryError, match="plane"):
            WorkerPool(plane="fibers")

    def test_rejects_unknown_mode(self):
        with pytest.raises(DiscoveryError, match="mode"):
            WorkerPool(mode="quantum")

    def test_reuseport_mode_requires_platform(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "reuseport_available", lambda: False)
        with pytest.raises(TransportError, match="SO_REUSEPORT"):
            WorkerPool(mode="reuseport")


class TestFallback:
    def test_auto_mode_falls_back_to_handoff(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "reuseport_available", lambda: False)
        pool = WorkerPool(workers=1)
        try:
            assert pool.mode == "handoff"
        finally:
            pool.stop()

    @pytest.mark.skipif(
        not hasattr(socket, "SO_REUSEPORT"),
        reason="platform never had SO_REUSEPORT",
    )
    def test_listener_flag_fails_without_platform_support(self, monkeypatch):
        monkeypatch.delattr(socket, "SO_REUSEPORT")
        with pytest.raises(TransportError, match="SO_REUSEPORT"):
            TCPListener(reuse_port=True)

    @requires_reuseport
    def test_two_listeners_share_a_port(self):
        first = TCPListener(reuse_port=True)
        try:
            second = TCPListener(port=first.address[1], reuse_port=True)
            second.close()
        finally:
            first.close()


class TestServing:
    @both_modes()
    def test_serves_published_documents(self, mode):
        with WorkerPool(workers=2, mode=mode) as pool:
            url = pool.publish_schema("/docs/hello", "<hello/>")
            assert url == pool.url_for("/docs/hello")
            for _ in range(5):
                assert http_get(url) == b"<hello/>"

    @requires_reuseport
    def test_kernel_shards_accepts_across_workers(self):
        with WorkerPool(workers=2, mode="reuseport") as pool:
            seen = set()
            for _ in range(40):
                body = http_get(pool.url_for("/mp/worker"))
                seen.add(json.loads(body)["worker"])
                if seen == {0, 1}:
                    break
            assert seen == {0, 1}

    def test_handoff_deals_to_every_worker(self):
        with WorkerPool(workers=2, mode="handoff") as pool:
            seen = set()
            for _ in range(8):
                body = http_get(pool.url_for("/mp/worker"))
                seen.add(json.loads(body)["worker"])
            assert seen == {0, 1}  # round-robin: 8 deals cover 2 workers

    @both_modes()
    def test_golden_vectors_byte_exact_through_pool(self, mode):
        """Satellite: both modes serve the golden wire bytes unchanged."""
        with WorkerPool(workers=2, mode=mode) as pool:
            pinned = {}
            for name in vectors.VECTOR_NAMES:
                golden_data = vectors.data_path(name).read_bytes()
                golden_meta = vectors.meta_path(name).read_bytes()
                pool.publish_schema(f"/golden/{name}/data", golden_data.hex())
                pool.publish_schema(f"/golden/{name}/meta", golden_meta.hex())
                pinned[name] = (golden_data, golden_meta)
            for name, (golden_data, golden_meta) in pinned.items():
                data = http_get(pool.url_for(f"/golden/{name}/data"))
                meta = http_get(pool.url_for(f"/golden/{name}/meta"))
                assert bytes.fromhex(data.decode()) == golden_data, name
                assert bytes.fromhex(meta.decode()) == golden_meta, name

    def test_unpublish_reaches_every_worker(self):
        with WorkerPool(workers=2) as pool:
            pool.publish_schema("/gone-soon", "<x/>")
            assert http_get(pool.url_for("/gone-soon")) == b"<x/>"
            pool.unpublish("/gone-soon")

            def gone_everywhere():
                for _ in range(6):
                    try:
                        http_get(pool.url_for("/gone-soon"))
                    except MetadataHTTPError:
                        continue
                    return False
                return True

            wait_until(gone_everywhere, message="unpublish to converge")


class TestCrossWorkerPublish:
    def test_post_publish_converges_on_all_workers(self):
        with WorkerPool(workers=2) as pool:
            response = http_post(
                pool.url_for("/mp/publish?path=/late/doc"),
                b"<late/>",
                content_type="application/xml",
            )
            assert json.loads(response) == {"published": True}

            def on_every_worker():
                # Consecutive fetches land on arbitrary workers; a run
                # of successes means the relay reached all of them.
                for _ in range(10):
                    try:
                        if http_get(pool.url_for("/late/doc")) != b"<late/>":
                            return False
                    except MetadataHTTPError:
                        return False
                return True

            wait_until(on_every_worker, message="publish to converge")

    def test_publish_needs_absolute_path(self):
        with WorkerPool(workers=1) as pool:
            with pytest.raises(MetadataHTTPError):
                http_post(pool.url_for("/mp/publish?path=relative"), b"<x/>")
            with pytest.raises(MetadataHTTPError):
                http_get(pool.url_for("/mp/publish?path=/get-not-post"))


class TestChaos:
    def test_crash_respawn_loses_no_documents(self):
        """CHAOS_SEED replay: 2 kills, full recovery, no lost documents."""
        plan = PoolFaultPlan(CHAOS_SEED, crash=0.4, max_crashes=2)
        pool = WorkerPool(workers=2, fault_plan=plan, tick_seconds=0.05)
        with pool:
            pool.publish_schema("/keep-me", "<keep/>")
            wait_until(
                lambda: pool.status().total_respawns >= 2,
                timeout=20,
                message="two chaos kills",
            )
            pool.wait_ready(timeout=10)
            # The PR-1 retry budget absorbs any connection that raced
            # the kill; a respawned worker must already hold the doc.
            client = MetadataClient(ttl=0)
            result = client.get(pool.url_for("/keep-me"))
            assert result.body == b"<keep/>"
            status = pool.status()
            assert status.total_respawns >= 2
            assert status.alive == 2

    def test_respawn_disabled_leaves_worker_down(self):
        plan = PoolFaultPlan(CHAOS_SEED, crash=1.0, max_crashes=1)
        pool = WorkerPool(
            workers=2, fault_plan=plan, respawn=False, tick_seconds=0.05
        )
        # No __enter__: the immediate kill means "all ready" never holds.
        pool.start()
        try:
            wait_until(
                lambda: pool.status().alive == 1,
                timeout=10,
                message="one unrecovered kill",
            )
            assert pool.status().total_respawns == 0
        finally:
            pool.stop()


class TestStatusAndObs:
    def test_status_snapshot_shape(self):
        with WorkerPool(workers=2) as pool:
            status = pool.status()
            assert isinstance(status, PoolStatus)
            assert status.alive == 2
            assert status.total_respawns == 0
            assert [worker.index for worker in status.workers] == [0, 1]
            assert all(isinstance(w, WorkerStatus) for w in status.workers)
            as_dict = status.as_dict()
            assert as_dict["mode"] == pool.mode
            assert as_dict["port"] == pool.port
            assert len(as_dict["workers"]) == 2

    def test_mp_status_endpoint_reports_pool_health(self):
        with WorkerPool(workers=2, tick_seconds=0.05) as pool:
            def status_pushed():
                body = http_get(pool.url_for("/mp/status"))
                status = json.loads(body)
                return status.get("alive") == 2 and len(status.get("workers", [])) == 2

            wait_until(status_pushed, message="status push to reach workers")

    def test_parent_exports_worker_gauges(self, fresh_registry):
        with WorkerPool(workers=1, tick_seconds=0.05):
            wait_until(
                lambda: "mp_worker_up" in fresh_registry.snapshot(),
                timeout=5,
                message="parent obs push",
            )
            snap = fresh_registry.snapshot()
            assert snap["mp_worker_up"][(("worker", "0"),)] == 1.0
            assert snap["mp_worker_respawns_total"][(("worker", "0"),)] == 0

    def test_worker_metrics_endpoint_shows_pool_health(self):
        with WorkerPool(workers=1, tick_seconds=0.05) as pool:
            wait_until(
                lambda: b"mp_worker_up" in http_get(pool.url_for("/metrics")),
                message="pool gauges on a worker's /metrics",
            )


class TestAsyncPlane:
    @requires_reuseport
    def test_async_workers_serve_and_shard(self):
        with WorkerPool(workers=2, mode="reuseport", plane="async") as pool:
            pool.publish_schema("/async-doc", "<async/>")
            seen = set()
            for _ in range(40):
                assert http_get(pool.url_for("/async-doc")) == b"<async/>"
                seen.add(json.loads(http_get(pool.url_for("/mp/worker")))["worker"])
                if seen == {0, 1}:
                    break
            assert seen == {0, 1}
