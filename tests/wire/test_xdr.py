"""Unit tests for the XDR baseline codec."""

import struct

import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import WireError
from repro.pbio import IOContext, IOField
from repro.wire import XDRCodec
from repro.wire.xdr import xdr_encoded_size

from tests.pbio.conftest import ASDOFF_RECORD, register_asdoff


class TestRoundtrip:
    def test_paper_structure_roundtrips(self, any_arch):
        ctx = IOContext(any_arch)
        fmt = register_asdoff(ctx)
        codec = XDRCodec(fmt)
        assert codec.decode(codec.encode(ASDOFF_RECORD)) == ASDOFF_RECORD

    def test_encoding_is_architecture_independent(self):
        """The whole point of a canonical format: identical bytes from
        any sender whose C types have the same widths (an ILP32 SPARC and
        an ILP32 x86 differ only in byte order and layout, which XDR
        erases)."""
        from repro.arch import X86_32

        sparc = XDRCodec(register_asdoff(IOContext(SPARC_32)))
        x86 = XDRCodec(register_asdoff(IOContext(X86_32)))
        assert sparc.encode(ASDOFF_RECORD) == x86.encode(ASDOFF_RECORD)

    def test_nested_and_arrays_roundtrip(self, x86_context):
        inner = x86_context.register_format(
            "inner",
            [IOField("tag", "char[4]", 1, 0), IOField("v", "float", 4, 4)],
        )
        fmt = x86_context.register_format(
            "outer",
            [
                IOField("pair", "inner[2]", 8, 0),
                IOField("n", "integer", 4, 16),
                IOField("data", "double[n]", 8, 24),
                IOField("flag", "boolean", 1, 32),
            ],
            record_length=40,
        )
        record = {
            "pair": [{"tag": "ab", "v": 0.5}, {"tag": "cd", "v": 1.5}],
            "n": 2,
            "data": [1.0, 2.0],
            "flag": True,
        }
        codec = XDRCodec(fmt)
        assert codec.decode(codec.encode(record)) == record


class TestCanonicalRepresentation:
    def test_everything_is_big_endian(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        assert XDRCodec(fmt).encode({"v": 1}) == b"\x00\x00\x00\x01"

    def test_small_ints_widen_to_four_bytes(self, x86_context):
        fmt = x86_context.register_format(
            "t", [IOField("a", "integer", 2, 0), IOField("b", "integer", 1, 2)]
        )
        assert len(XDRCodec(fmt).encode({"a": 1, "b": 2})) == 8

    def test_eight_byte_ints_become_hyper(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 8, 0)])
        assert XDRCodec(fmt).encode({"v": -2}) == struct.pack(">q", -2)

    def test_string_layout(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("s", "string", 8, 0)])
        encoded = XDRCodec(fmt).encode({"s": "hello"})
        assert encoded == b"\x00\x00\x00\x05hello\x00\x00\x00"

    def test_null_string_sentinel(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("s", "string", 8, 0)])
        codec = XDRCodec(fmt)
        encoded = codec.encode({"s": None})
        assert encoded == b"\xff\xff\xff\xff"
        assert codec.decode(encoded) == {"s": None}

    def test_dynamic_array_carries_inline_count(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField("n", "integer", 4, 0), IOField("d", "integer[n]", 4, 8)],
            record_length=16,
        )
        encoded = XDRCodec(fmt).encode({"n": 2, "d": [7, 8]})
        # n (4) + count (4) + two elements (8)
        assert encoded == struct.pack(">iIii", 2, 2, 7, 8)

    def test_char_widens_boolean_widens(self, x86_context):
        fmt = x86_context.register_format(
            "t", [IOField("c", "char", 1, 0), IOField("b", "boolean", 1, 1)]
        )
        encoded = XDRCodec(fmt).encode({"c": "Z", "b": True})
        assert encoded == struct.pack(">ii", ord("Z"), 1)

    def test_count_field_derived_when_missing(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField("n", "integer", 4, 0), IOField("d", "integer[n]", 4, 8)],
            record_length=16,
        )
        codec = XDRCodec(fmt)
        assert codec.decode(codec.encode({"d": [5, 6, 7]}))["n"] == 3


class TestErrors:
    def test_missing_field_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="missing field"):
            XDRCodec(fmt).encode({})

    def test_truncated_data_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "double", 8, 0)])
        with pytest.raises(WireError, match="truncated"):
            XDRCodec(fmt).decode(b"\x00\x00")

    def test_trailing_bytes_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        codec = XDRCodec(fmt)
        with pytest.raises(WireError, match="trailing"):
            codec.decode(codec.encode({"v": 1}) + b"\x00")

    def test_truncated_string_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("s", "string", 8, 0)])
        with pytest.raises(WireError, match="truncated string"):
            XDRCodec(fmt).decode(b"\x00\x00\x00\x10ab")

    def test_wrong_static_array_length_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer[3]", 4, 0)])
        with pytest.raises(WireError, match="expects 3"):
            XDRCodec(fmt).encode({"v": [1, 2]})


class TestSizes:
    def test_xdr_never_smaller_than_packed_data(self, x86_context):
        """Widening means XDR output is at least as large as the logical
        data, typically larger for structures with small fields."""
        fmt = x86_context.register_format(
            "t",
            [
                IOField("a", "integer", 2, 0),
                IOField("b", "char", 1, 2),
                IOField("c", "boolean", 1, 3),
            ],
        )
        record = {"a": 1, "b": "x", "c": False}
        assert xdr_encoded_size(fmt, record) == 12  # 3 fields x 4 bytes
