"""Unit tests for stream framing."""

import io

import pytest

from repro.errors import ChannelClosedError, WireError
from repro.wire import FrameDecoder, frame, read_frame, unframe


def reader_over(data: bytes):
    """A socket-style recv over a byte string."""
    stream = io.BytesIO(data)
    return lambda n: stream.read(n)


class TestFrameUnframe:
    def test_roundtrip(self):
        message, rest = unframe(frame(b"hello"))
        assert message == b"hello"
        assert rest == b""

    def test_concatenated_frames_split(self):
        data = frame(b"one") + frame(b"two")
        first, rest = unframe(data)
        second, rest = unframe(rest)
        assert (first, second, rest) == (b"one", b"two", b"")

    def test_empty_message_allowed(self):
        message, _ = unframe(frame(b""))
        assert message == b""

    def test_incomplete_header_rejected(self):
        with pytest.raises(WireError, match="incomplete frame header"):
            unframe(b"\x00\x00")

    def test_incomplete_body_rejected(self):
        with pytest.raises(WireError, match="incomplete frame body"):
            unframe(frame(b"hello")[:-1])

    def test_absurd_length_rejected_without_allocation(self):
        with pytest.raises(WireError, match="exceeds limit"):
            unframe(b"\xff\xff\xff\xff" + b"x")


class TestReadFrame:
    def test_reads_one_frame(self):
        recv = reader_over(frame(b"payload"))
        assert read_frame(recv) == b"payload"

    def test_sequential_frames(self):
        recv = reader_over(frame(b"a") + frame(b"bb"))
        assert read_frame(recv) == b"a"
        assert read_frame(recv) == b"bb"

    def test_eof_at_boundary_is_channel_closed(self):
        recv = reader_over(b"")
        with pytest.raises(ChannelClosedError):
            read_frame(recv)

    def test_eof_mid_frame_is_wire_error(self):
        recv = reader_over(frame(b"payload")[:-3])
        with pytest.raises(WireError, match="mid-frame"):
            read_frame(recv)

    def test_short_reads_accumulate(self):
        data = frame(b"abcdef")
        offsets = iter(range(0, len(data) + 1))
        next(offsets)

        def dribble(n, _state={"pos": 0}):
            pos = _state["pos"]
            chunk = data[pos : pos + 1]
            _state["pos"] = pos + 1
            return chunk

        assert read_frame(dribble) == b"abcdef"


class TestFrameDecoder:
    def test_whole_frames(self):
        decoder = FrameDecoder()
        decoder.feed(frame(b"x") + frame(b"yy"))
        assert list(decoder.messages()) == [b"x", b"yy"]

    def test_byte_by_byte_feeding(self):
        decoder = FrameDecoder()
        collected = []
        for byte in frame(b"hello") + frame(b"world"):
            decoder.feed(bytes([byte]))
            collected.extend(decoder.messages())
        assert collected == [b"hello", b"world"]

    def test_pending_bytes_reported(self):
        decoder = FrameDecoder()
        decoder.feed(frame(b"hello")[:3])
        assert list(decoder.messages()) == []
        assert decoder.pending_bytes == 3

    def test_oversize_frame_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"\xff\xff\xff\xff")
        with pytest.raises(WireError, match="exceeds limit"):
            list(decoder.messages())
