"""Unit tests for stream framing."""

import io

import pytest

from repro.errors import ChannelClosedError, WireError
from repro.wire import (
    BufferPool,
    FrameDecoder,
    ReceiveBuffer,
    frame,
    frame_iov,
    read_frame,
    read_frame_into,
    unframe,
)


def reader_over(data: bytes):
    """A socket-style recv over a byte string."""
    stream = io.BytesIO(data)
    return lambda n: stream.read(n)


def recv_into_over(data: bytes):
    """A socket-style recv_into over a byte string."""
    stream = io.BytesIO(data)
    return lambda view: stream.readinto(view)


class TestFrameUnframe:
    def test_roundtrip(self):
        message, rest = unframe(frame(b"hello"))
        assert message == b"hello"
        assert rest == b""

    def test_concatenated_frames_split(self):
        data = frame(b"one") + frame(b"two")
        first, rest = unframe(data)
        second, rest = unframe(rest)
        assert (first, second, rest) == (b"one", b"two", b"")

    def test_empty_message_allowed(self):
        message, _ = unframe(frame(b""))
        assert message == b""

    def test_incomplete_header_rejected(self):
        with pytest.raises(WireError, match="incomplete frame header"):
            unframe(b"\x00\x00")

    def test_incomplete_body_rejected(self):
        with pytest.raises(WireError, match="incomplete frame body"):
            unframe(frame(b"hello")[:-1])

    def test_absurd_length_rejected_without_allocation(self):
        with pytest.raises(WireError, match="exceeds limit"):
            unframe(b"\xff\xff\xff\xff" + b"x")


class TestReadFrame:
    def test_reads_one_frame(self):
        recv = reader_over(frame(b"payload"))
        assert read_frame(recv) == b"payload"

    def test_sequential_frames(self):
        recv = reader_over(frame(b"a") + frame(b"bb"))
        assert read_frame(recv) == b"a"
        assert read_frame(recv) == b"bb"

    def test_eof_at_boundary_is_channel_closed(self):
        recv = reader_over(b"")
        with pytest.raises(ChannelClosedError):
            read_frame(recv)

    def test_eof_mid_frame_is_wire_error(self):
        recv = reader_over(frame(b"payload")[:-3])
        with pytest.raises(WireError, match="mid-frame"):
            read_frame(recv)

    def test_short_reads_accumulate(self):
        data = frame(b"abcdef")
        offsets = iter(range(0, len(data) + 1))
        next(offsets)

        def dribble(n, _state={"pos": 0}):
            pos = _state["pos"]
            chunk = data[pos : pos + 1]
            _state["pos"] = pos + 1
            return chunk

        assert read_frame(dribble) == b"abcdef"


class TestFrameDecoder:
    def test_whole_frames(self):
        decoder = FrameDecoder()
        decoder.feed(frame(b"x") + frame(b"yy"))
        assert list(decoder.messages()) == [b"x", b"yy"]

    def test_byte_by_byte_feeding(self):
        decoder = FrameDecoder()
        collected = []
        for byte in frame(b"hello") + frame(b"world"):
            decoder.feed(bytes([byte]))
            collected.extend(decoder.messages())
        assert collected == [b"hello", b"world"]

    def test_pending_bytes_reported(self):
        decoder = FrameDecoder()
        decoder.feed(frame(b"hello")[:3])
        assert list(decoder.messages()) == []
        assert decoder.pending_bytes == 3

    def test_oversize_frame_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"\xff\xff\xff\xff")
        with pytest.raises(WireError, match="exceeds limit"):
            list(decoder.messages())


class TestFrameIov:
    def test_equivalent_to_frame(self):
        header, payload = frame_iov(b"hello")
        assert header + payload == frame(b"hello")

    def test_payload_not_copied(self):
        message = b"payload bytes"
        _, payload = frame_iov(message)
        assert payload is message

    def test_accepts_memoryview(self):
        view = memoryview(b"viewed")
        header, payload = frame_iov(view)
        assert header + bytes(payload) == frame(b"viewed")

    def test_oversize_rejected(self):
        class Huge:
            def __len__(self):
                return 1 << 30

        with pytest.raises(WireError, match="exceeds frame limit"):
            frame_iov(Huge())


class TestUnframeZeroCopy:
    def test_memoryview_input_yields_views(self):
        data = memoryview(frame(b"one") + frame(b"two"))
        message, rest = unframe(data)
        assert isinstance(message, memoryview)
        assert isinstance(rest, memoryview)
        assert bytes(message) == b"one"
        second, rest = unframe(rest)
        assert bytes(second) == b"two"
        assert len(rest) == 0

    def test_bytearray_input_yields_views_without_copy(self):
        buffer = bytearray(frame(b"mutable"))
        message, _ = unframe(buffer)
        assert isinstance(message, memoryview)
        # Proof of aliasing: mutating the buffer shows through the view.
        buffer[4] = ord("M")
        assert bytes(message) == b"Mutable"

    def test_bytes_input_keeps_bytes_results(self):
        message, rest = unframe(frame(b"plain"))
        assert isinstance(message, bytes)
        assert isinstance(rest, bytes)

    def test_errors_match_bytes_path(self):
        with pytest.raises(WireError, match="incomplete frame header"):
            unframe(memoryview(b"\x00\x00"))
        with pytest.raises(WireError, match="incomplete frame body"):
            unframe(memoryview(frame(b"hello")[:-1]))


class TestReadFrameInto:
    def test_reads_one_frame(self):
        buffer = ReceiveBuffer()
        view = read_frame_into(recv_into_over(frame(b"payload")), buffer)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"payload"

    def test_sequential_frames_reuse_buffer(self):
        buffer = ReceiveBuffer()
        recv_into = recv_into_over(frame(b"first!") + frame(b"second"))
        first = bytes(read_frame_into(recv_into, buffer))
        capacity = buffer.capacity
        second = read_frame_into(recv_into, buffer)
        assert (first, bytes(second)) == (b"first!", b"second")
        assert buffer.capacity == capacity  # no new allocation

    def test_next_read_overwrites_prior_view(self):
        buffer = ReceiveBuffer()
        recv_into = recv_into_over(frame(b"aaaa") + frame(b"bbbb"))
        first = read_frame_into(recv_into, buffer)
        read_frame_into(recv_into, buffer)
        # The ownership contract: the old view now shows the new bytes.
        assert bytes(first) == b"bbbb"

    def test_eof_at_boundary_is_channel_closed(self):
        with pytest.raises(ChannelClosedError):
            read_frame_into(recv_into_over(b""), ReceiveBuffer())

    def test_eof_mid_frame_is_wire_error(self):
        recv_into = recv_into_over(frame(b"payload")[:-3])
        with pytest.raises(WireError, match="mid-frame"):
            read_frame_into(recv_into, ReceiveBuffer())

    def test_oversize_length_rejected(self):
        recv_into = recv_into_over(b"\xff\xff\xff\xff")
        with pytest.raises(WireError, match="exceeds limit"):
            read_frame_into(recv_into, ReceiveBuffer())

    def test_empty_frame(self):
        view = read_frame_into(recv_into_over(frame(b"")), ReceiveBuffer())
        assert bytes(view) == b""

    def test_pool_backed_growth_swaps_through_pool(self):
        pool = BufferPool()
        buffer = ReceiveBuffer(pool, initial=256)
        recv_into = recv_into_over(frame(b"x" * 100) + frame(b"y" * 5000))
        read_frame_into(recv_into, buffer)
        read_frame_into(recv_into, buffer)
        assert buffer.capacity >= 5000
        # The outgrown 256-byte buffer went back to the pool.
        assert pool.releases == 1
        buffer.close()
        assert pool.stats()["pooled_buffers"] == 2


class TestFrameDecoderZeroCopy:
    def test_single_chunk_message_is_a_view(self):
        decoder = FrameDecoder(copy=False)
        decoder.feed(frame(b"zero-copy"))
        (message,) = decoder.messages()
        assert isinstance(message, memoryview)
        assert bytes(message) == b"zero-copy"

    def test_spanning_message_is_assembled(self):
        decoder = FrameDecoder(copy=False)
        data = frame(b"spans-two-chunks")
        decoder.feed(data[:7])
        decoder.feed(data[7:])
        (message,) = decoder.messages()
        assert bytes(message) == b"spans-two-chunks"

    def test_byte_by_byte_feeding(self):
        decoder = FrameDecoder(copy=False)
        collected = []
        for byte in frame(b"hello") + frame(b"world"):
            decoder.feed(bytes([byte]))
            collected.extend(bytes(m) for m in decoder.messages())
        assert collected == [b"hello", b"world"]

    def test_views_survive_later_feeds(self):
        decoder = FrameDecoder(copy=False)
        decoder.feed(frame(b"first"))
        (first,) = decoder.messages()
        decoder.feed(frame(b"second"))
        (second,) = decoder.messages()
        assert (bytes(first), bytes(second)) == (b"first", b"second")

    def test_copy_mode_defends_against_mutable_chunks(self):
        decoder = FrameDecoder()  # copy=True default
        chunk = bytearray(frame(b"abc"))
        decoder.feed(chunk)
        chunk[:] = b"\x00" * len(chunk)  # caller reuses the buffer
        assert list(decoder.messages()) == [b"abc"]

    def test_oversize_frame_rejected(self):
        decoder = FrameDecoder(copy=False)
        decoder.feed(b"\xff\xff\xff\xff")
        with pytest.raises(WireError, match="exceeds limit"):
            list(decoder.messages())
