"""Unit tests for the CDR (IIOP) baseline codec."""

import struct

import pytest

from repro.arch import SPARC_32, X86_32, X86_64
from repro.errors import WireError
from repro.pbio import IOContext, IOField
from repro.wire import CDRCodec, XDRCodec
from repro.wire.cdr import cdr_encoded_size

from tests.pbio.conftest import ASDOFF_RECORD, register_asdoff


class TestRoundtrip:
    def test_paper_structure_roundtrips(self, any_arch):
        codec = CDRCodec(register_asdoff(IOContext(any_arch)))
        assert codec.decode(codec.encode(ASDOFF_RECORD)) == ASDOFF_RECORD

    def test_reader_makes_right_across_codecs(self):
        """A little-endian sender's message decodes on a codec built for
        a big-endian format: the flag byte carries the order."""
        le_codec = CDRCodec(register_asdoff(IOContext(X86_32)))
        be_codec = CDRCodec(register_asdoff(IOContext(SPARC_32)))
        message = le_codec.encode(ASDOFF_RECORD)
        assert message[0] == 1  # little-endian flag
        assert be_codec.decode(message) == ASDOFF_RECORD
        message = be_codec.encode(ASDOFF_RECORD)
        assert message[0] == 0
        assert le_codec.decode(message) == ASDOFF_RECORD

    def test_nested_and_arrays(self, x86_context):
        inner = x86_context.register_format(
            "inner", [IOField("tag", "char[4]", 1, 0), IOField("v", "float", 4, 4)]
        )
        fmt = x86_context.register_format(
            "outer",
            [
                IOField("pair", "inner[2]", 8, 0),
                IOField("n", "integer", 4, 16),
                IOField("data", "double[n]", 8, 24),
                IOField("flag", "boolean", 1, 32),
                IOField("c", "char", 1, 33),
            ],
            record_length=40,
        )
        record = {
            "pair": [{"tag": "ab", "v": 0.5}, {"tag": "cd", "v": 1.5}],
            "n": 2,
            "data": [1.0, 2.0],
            "flag": True,
            "c": "Z",
        }
        codec = CDRCodec(fmt)
        assert codec.decode(codec.encode(record)) == record


class TestRepresentation:
    def test_no_widening_unlike_xdr(self, x86_context):
        """CDR keeps a short 2 bytes where XDR widens to 4."""
        fmt = x86_context.register_format(
            "t", [IOField("a", "integer", 2, 0), IOField("b", "integer", 2, 2)]
        )
        record = {"a": 1, "b": 2}
        assert cdr_encoded_size(fmt, record) == 1 + 4  # flag + 2 shorts
        assert len(XDRCodec(fmt).encode(record)) == 8

    def test_natural_alignment_within_body(self, x86_context):
        fmt = x86_context.register_format(
            "t", [IOField("c", "char", 1, 0), IOField("d", "double", 8, 8)]
        )
        message = CDRCodec(fmt).encode({"c": "x", "d": 1.0})
        # flag(1) + char(1) + pad to 8 within body + double(8)
        assert len(message) == 1 + 8 + 8
        (value,) = struct.unpack_from("<d", message, 9)
        assert value == 1.0

    def test_string_layout_with_nul(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("s", "string", 8, 0)])
        message = CDRCodec(fmt).encode({"s": "hi"})
        assert message[1:] == struct.pack("<I", 3) + b"hi\x00"

    def test_null_vs_empty_string(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("s", "string", 8, 0)])
        codec = CDRCodec(fmt)
        assert codec.decode(codec.encode({"s": None})) == {"s": None}
        assert codec.decode(codec.encode({"s": ""})) == {"s": ""}

    def test_count_derived_when_missing(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField("n", "integer", 4, 0), IOField("d", "integer[n]", 4, 8)],
            record_length=16,
        )
        codec = CDRCodec(fmt)
        assert codec.decode(codec.encode({"d": [7, 8]}))["n"] == 2


class TestErrors:
    def test_bad_flag_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="byte-order flag"):
            CDRCodec(fmt).decode(b"\x07\x00\x00\x00\x01")

    def test_empty_message_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="empty"):
            CDRCodec(fmt).decode(b"")

    def test_trailing_bytes_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        codec = CDRCodec(fmt)
        with pytest.raises(WireError, match="trailing"):
            codec.decode(codec.encode({"v": 1}) + b"\x00")

    def test_truncated_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "double", 8, 0)])
        with pytest.raises(WireError, match="truncated"):
            CDRCodec(fmt).decode(b"\x01\x00\x00")

    def test_malformed_string_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("s", "string", 8, 0)])
        # length says 3 but no NUL terminator at the end
        with pytest.raises(WireError, match="malformed string"):
            CDRCodec(fmt).decode(b"\x01" + struct.pack("<I", 3) + b"hiX")

    def test_missing_field_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="missing field"):
            CDRCodec(fmt).encode({})


class TestSizeOrdering:
    def test_cdr_between_ndr_and_xdr_for_small_fields(self, x86_context):
        """For structures dominated by small fields: NDR <= CDR <= XDR
        (CDR avoids widening, but both pay string length prefixes NDR
        pays as offsets)."""
        from repro.pbio.encode import encode_record

        fmt = x86_context.register_format(
            "t",
            [
                IOField("a", "integer", 2, 0),
                IOField("b", "integer", 1, 2),
                IOField("c", "boolean", 1, 3),
                IOField("d", "integer", 2, 4),
            ],
        )
        record = {"a": 1, "b": 2, "c": True, "d": 3}
        cdr = cdr_encoded_size(fmt, record) - 1  # drop the flag byte
        xdr = len(XDRCodec(fmt).encode(record))
        ndr = len(encode_record(fmt, record))
        assert ndr <= cdr <= xdr
