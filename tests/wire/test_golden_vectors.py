"""Golden-wire conformance: encode output is byte-pinned, on every plane.

The ``.bin`` files under ``tests/golden/`` are the wire contract.  For
each vector this suite asserts:

- ``IOContext.encode`` reproduces the golden data message *exactly* —
  with wire tracing disabled and enabled (trace context is injected at
  the connection/endpoint layer, never inside ``encode``, so the NDR
  bytes must not move);
- ``IOContext.format_message`` reproduces the golden metadata message;
- a receiver that learns the golden metadata decodes the golden data
  message back to the pinned record, after transiting a real channel on
  the threaded plane and on the asyncio plane;
- a trace-flagged copy of the golden message still decodes, and
  ``extract`` recovers the golden bytes exactly.
"""

import asyncio

import pytest

from repro import aio
from repro.obs import (
    TraceContext,
    extract,
    get_tracer,
    inject,
    set_wire_tracing,
)
from repro.mp.shm import ShmChannel
from repro.pbio.context import HEADER_SIZE, IOContext
from repro.transport import make_pipe

from tests.golden import vectors


def golden_bytes(name):
    """The checked-in (data message, metadata message) pair."""
    return vectors.data_path(name).read_bytes(), vectors.meta_path(name).read_bytes()


def assert_matches_record(decoded, record):
    """Decoded values equal the pinned record, field for field."""
    for key, expected in record.items():
        actual = decoded[key]
        if isinstance(expected, list):
            assert list(actual) == expected, key
        else:
            assert actual == expected, key


@pytest.fixture(params=vectors.VECTOR_NAMES)
def vector(request):
    """(name, context, fmt, record, golden_data, golden_meta)."""
    name = request.param
    context, fmt, record = vectors.build(name)
    golden_data, golden_meta = golden_bytes(name)
    return name, context, fmt, record, golden_data, golden_meta


class TestByteExactEncode:
    def test_data_message_matches_golden(self, vector, fresh_registry):
        _, context, fmt, record, golden_data, _ = vector
        assert context.encode(fmt, record) == golden_data

    def test_metadata_message_matches_golden(self, vector, fresh_registry):
        _, context, fmt, _, _, golden_meta = vector
        assert context.format_message(fmt) == golden_meta

    def test_encode_identical_with_wire_tracing_enabled(
        self, vector, fresh_registry
    ):
        _, context, fmt, record, golden_data, golden_meta = vector
        set_wire_tracing(True)
        with get_tracer().start_span("golden-encode"):
            assert context.encode(fmt, record) == golden_data
            assert context.format_message(fmt) == golden_meta

    def test_encode_identical_with_registry_disabled(self, vector, fresh_registry):
        _, context, fmt, record, golden_data, _ = vector
        fresh_registry.disable()
        assert context.encode(fmt, record) == golden_data


class TestEncodeInto:
    """The in-place encoder is held to the same byte-pinned contract."""

    def test_byte_identical_to_encode(self, vector, fresh_registry):
        _, context, fmt, record, golden_data, _ = vector
        buffer = bytearray(len(golden_data) + 64)
        written = context.encode_into(fmt, record, buffer)
        assert bytes(buffer[:written]) == golden_data

    def test_byte_identical_at_nonzero_offset(self, vector, fresh_registry):
        _, context, fmt, record, golden_data, _ = vector
        buffer = bytearray(len(golden_data) + 128)
        written = context.encode_into(fmt, record, buffer, offset=32)
        assert bytes(buffer[32:32 + written]) == golden_data

    def test_byte_identical_with_wire_tracing_enabled(
        self, vector, fresh_registry
    ):
        _, context, fmt, record, golden_data, _ = vector
        set_wire_tracing(True)
        with get_tracer().start_span("golden-encode-into"):
            buffer = bytearray(len(golden_data))
            written = context.encode_into(fmt, record, buffer)
            assert bytes(buffer[:written]) == golden_data

    def test_byte_identical_with_registry_disabled(self, vector, fresh_registry):
        _, context, fmt, record, golden_data, _ = vector
        fresh_registry.disable()
        buffer = bytearray(len(golden_data))
        written = context.encode_into(fmt, record, buffer)
        assert bytes(buffer[:written]) == golden_data

    def test_undersized_buffer_rejected_with_needed_size(
        self, vector, fresh_registry
    ):
        from repro.errors import EncodeError
        from repro.pbio.context import HEADER_SIZE as HDR

        _, context, fmt, record, golden_data, _ = vector
        with pytest.raises(EncodeError) as excinfo:
            context.encode_into(fmt, record, bytearray(HDR))
        assert excinfo.value.needed == len(golden_data) - HDR

    def test_threaded_plane_transits_encode_into_view(
        self, vector, fresh_registry
    ):
        _, context, fmt, record, golden_data, golden_meta = vector
        buffer = bytearray(len(golden_data))
        written = context.encode_into(fmt, record, buffer)
        left, right = make_pipe()
        left.send(golden_meta)
        left.send(memoryview(buffer)[:written])
        receiver = IOContext()
        meta = right.recv(timeout=5)
        _, _, _, length, _ = receiver.parse_header(meta)
        receiver.learn_format(meta[HEADER_SIZE:HEADER_SIZE + length])
        data = right.recv(timeout=5)
        assert data == golden_data
        assert_matches_record(receiver.decode(data), record)

    @pytest.mark.parametrize("tracing", [False, True], ids=["plain", "traced"])
    def test_async_plane_transits_encode_into_view(
        self, vector, fresh_registry, arun, tracing
    ):
        _, context, fmt, record, golden_data, golden_meta = vector
        buffer = bytearray(len(golden_data))
        written = context.encode_into(fmt, record, buffer)
        message = memoryview(buffer)[:written]

        async def scenario():
            listener = await aio.listen()
            client_task = asyncio.ensure_future(aio.connect(*listener.address))
            server = await listener.accept(timeout=5)
            client = await client_task
            try:
                payload = (
                    inject(bytes(message), TraceContext(3, 5))
                    if tracing else message
                )
                await client.send(golden_meta)
                await client.send(payload)
                await client.flush()
                meta = await server.recv(timeout=5)
                data = await server.recv(timeout=5)
            finally:
                await client.close()
                await server.close()
                await listener.close()
            return meta, data

        meta, data = arun(scenario())
        assert meta == golden_meta
        recovered, trace = extract(data)
        assert recovered == golden_data
        assert trace == (TraceContext(3, 5) if tracing else None)
        receiver = IOContext()
        _, _, _, length, _ = receiver.parse_header(meta)
        receiver.learn_format(meta[HEADER_SIZE:HEADER_SIZE + length])
        assert_matches_record(receiver.decode(recovered), record)


class TestGoldenDecode:
    def test_receiver_decodes_golden_bytes(self, vector, fresh_registry):
        name, _, _, record, golden_data, golden_meta = vector
        receiver = IOContext()
        _, _, _, length, _ = receiver.parse_header(golden_meta)
        receiver.learn_format(golden_meta[HEADER_SIZE:HEADER_SIZE + length])
        decoded = receiver.decode(golden_data)
        assert_matches_record(decoded, record)

    def test_interpreted_converter_agrees(self, vector, fresh_registry):
        _, _, _, record, golden_data, golden_meta = vector
        receiver = IOContext()
        _, _, _, length, _ = receiver.parse_header(golden_meta)
        receiver.learn_format(golden_meta[HEADER_SIZE:HEADER_SIZE + length])
        decoded = receiver.decode(golden_data, mode="interpreted")
        assert_matches_record(decoded, record)


class TestTracePiggyback:
    def test_inject_extract_recovers_golden_exactly(self, vector, fresh_registry):
        _, _, _, _, golden_data, _ = vector
        context_in = TraceContext(trace_id=0xDEAD, span_id=0xBEEF)
        tagged = inject(golden_data, context_in)
        assert tagged != golden_data
        assert len(tagged) == len(golden_data) + 16
        recovered, context_out = extract(tagged)
        assert recovered == golden_data
        assert context_out == context_in

    def test_trace_flagged_message_still_decodes(self, vector, fresh_registry):
        _, _, _, record, golden_data, golden_meta = vector
        tagged = inject(golden_data, TraceContext(7, 9))
        receiver = IOContext()
        _, _, _, length, _ = receiver.parse_header(golden_meta)
        receiver.learn_format(golden_meta[HEADER_SIZE:HEADER_SIZE + length])
        # The header's length field still frames the NDR body, so even a
        # receiver that skips extract() decodes the payload correctly.
        assert_matches_record(receiver.decode(tagged), record)

    def test_metadata_messages_never_carry_trace(self, vector, fresh_registry):
        _, _, _, _, _, golden_meta = vector
        set_wire_tracing(True)
        with get_tracer().start_span("meta"):
            assert inject(golden_meta) == golden_meta


class TestGoldenAcrossChannels:
    def test_threaded_plane_transits_golden_bytes(self, vector, fresh_registry):
        _, _, _, record, golden_data, golden_meta = vector
        left, right = make_pipe()
        left.send(golden_meta)
        left.send(golden_data)
        receiver = IOContext()
        meta = right.recv(timeout=5)
        assert meta == golden_meta
        _, _, _, length, _ = receiver.parse_header(meta)
        receiver.learn_format(meta[HEADER_SIZE:HEADER_SIZE + length])
        data = right.recv(timeout=5)
        assert data == golden_data
        assert_matches_record(receiver.decode(data), record)

    @pytest.mark.parametrize("tracing", [False, True], ids=["plain", "traced"])
    def test_async_plane_transits_golden_bytes(
        self, vector, fresh_registry, arun, tracing
    ):
        _, _, _, record, golden_data, golden_meta = vector

        async def scenario():
            listener = await aio.listen()
            client_task = asyncio.ensure_future(aio.connect(*listener.address))
            server = await listener.accept(timeout=5)
            client = await client_task
            try:
                payload = (
                    inject(golden_data, TraceContext(3, 5))
                    if tracing else golden_data
                )
                await client.send(golden_meta)
                await client.send(payload)
                meta = await server.recv(timeout=5)
                data = await server.recv(timeout=5)
            finally:
                await client.close()
                await server.close()
                await listener.close()
            return meta, data

        meta, data = arun(scenario())
        assert meta == golden_meta
        message, trace = extract(data)
        assert message == golden_data
        assert trace == (TraceContext(3, 5) if tracing else None)
        receiver = IOContext()
        _, _, _, length, _ = receiver.parse_header(meta)
        receiver.learn_format(meta[HEADER_SIZE:HEADER_SIZE + length])
        assert_matches_record(receiver.decode(message), record)


@pytest.fixture(
    params=[
        (name, count)
        for name in vectors.BATCH_VECTOR_NAMES
        for count in vectors.BATCH_SIZES
    ],
    ids=lambda p: f"{p[0]}-batch{p[1]}",
)
def batch_vector(request):
    """(name, context, fmt, records, golden_batch, golden_meta)."""
    name, count = request.param
    context, fmt, _ = vectors.build(name)
    records = vectors.batch_records(name, count)
    golden_batch = vectors.batch_path(name, count).read_bytes()
    golden_meta = vectors.meta_path(name).read_bytes()
    return name, context, fmt, records, golden_batch, golden_meta


def _learned_receiver(golden_meta):
    receiver = IOContext()
    _, _, _, length, _ = receiver.parse_header(golden_meta)
    receiver.learn_format(golden_meta[HEADER_SIZE:HEADER_SIZE + length])
    return receiver


class TestColumnarBatchVectors:
    """The columnar batch frames (PROTOCOL §14) are byte-pinned too."""

    def test_batch_message_matches_golden(self, batch_vector, fresh_registry):
        _, context, fmt, records, golden_batch, _ = batch_vector
        assert context.encode_batch(fmt, records) == golden_batch

    def test_iov_parts_join_to_golden(self, batch_vector, fresh_registry):
        _, context, fmt, records, golden_batch, _ = batch_vector
        parts = context.encode_batch_iov(fmt, records)
        assert b"".join(bytes(part) for part in parts) == golden_batch

    def test_encode_identical_with_wire_tracing_enabled(
        self, batch_vector, fresh_registry
    ):
        _, context, fmt, records, golden_batch, _ = batch_vector
        set_wire_tracing(True)
        with get_tracer().start_span("golden-batch-encode"):
            assert context.encode_batch(fmt, records) == golden_batch

    def test_batch_messages_never_carry_trace(self, batch_vector, fresh_registry):
        # inject() tags data messages only (PROTOCOL §11): a batch frame
        # passes through a tracing-enabled sender byte-identical.
        _, _, _, _, golden_batch, _ = batch_vector
        set_wire_tracing(True)
        with get_tracer().start_span("batch"):
            assert inject(golden_batch) == golden_batch

    def test_receiver_decodes_golden_batch(self, batch_vector, fresh_registry):
        _, _, _, records, golden_batch, golden_meta = batch_vector
        receiver = _learned_receiver(golden_meta)
        batch = receiver.decode_batch(golden_batch)
        assert len(batch) == len(records)
        for decoded, record in zip(batch, records):
            assert_matches_record(decoded, record)

    def test_pure_python_encode_matches_golden(self, batch_vector, fresh_registry):
        _, context, fmt, records, golden_batch, _ = batch_vector
        assert context.encode_batch(fmt, records, use_numpy=False) == golden_batch

    def test_numpy_encode_matches_golden(self, batch_vector, fresh_registry):
        pytest.importorskip("numpy")
        _, context, fmt, records, golden_batch, _ = batch_vector
        assert context.encode_batch(fmt, records, use_numpy=True) == golden_batch

    def test_pure_python_decode_agrees(self, batch_vector, fresh_registry):
        _, _, _, records, golden_batch, golden_meta = batch_vector
        receiver = _learned_receiver(golden_meta)
        batch = receiver.decode_batch(golden_batch, use_numpy=False)
        for decoded, record in zip(batch, records):
            assert_matches_record(decoded, record)

    def test_threaded_plane_transits_golden_batch(
        self, batch_vector, fresh_registry
    ):
        _, _, _, records, golden_batch, golden_meta = batch_vector
        left, right = make_pipe()
        left.send(golden_meta)
        left.send(golden_batch)
        receiver = IOContext()
        meta = right.recv(timeout=5)
        _, _, _, length, _ = receiver.parse_header(meta)
        receiver.learn_format(meta[HEADER_SIZE:HEADER_SIZE + length])
        data = right.recv(timeout=5)
        assert data == golden_batch
        for decoded, record in zip(receiver.decode_batch(data), records):
            assert_matches_record(decoded, record)

    @pytest.mark.parametrize("tracing", [False, True], ids=["plain", "traced"])
    def test_async_plane_transits_golden_batch(
        self, batch_vector, fresh_registry, arun, tracing
    ):
        _, context, fmt, records, golden_batch, golden_meta = batch_vector

        async def scenario():
            listener = await aio.listen()
            client_task = asyncio.ensure_future(aio.connect(*listener.address))
            server = await listener.accept(timeout=5)
            client = await client_task
            try:
                if tracing:
                    set_wire_tracing(True)
                await client.send(golden_meta)
                # Vectored send: the frame reaches the wire via the
                # iovec path, yet must arrive byte-identical.
                await client.send_batch(context.encode_batch_iov(fmt, records))
                meta = await server.recv(timeout=5)
                data = await server.recv(timeout=5)
            finally:
                await client.close()
                await server.close()
                await listener.close()
            return meta, bytes(data)

        meta, data = arun(scenario())
        assert meta == golden_meta
        assert data == golden_batch
        receiver = _learned_receiver(meta)
        for decoded, record in zip(receiver.decode_batch(data), records):
            assert_matches_record(decoded, record)


@pytest.fixture
def shm_pair():
    """A connected shared-memory channel pair, roomy enough for any vector."""
    sender, receiver_end = ShmChannel.pair(1 << 22)
    try:
        yield sender, receiver_end
    finally:
        sender.close()
        receiver_end.close()


class TestGoldenOverSharedMemory:
    """The shm transport (PROTOCOL §15) carries the pinned bytes unchanged."""

    def test_shm_transits_golden_bytes(self, vector, fresh_registry, shm_pair):
        _, _, _, record, golden_data, golden_meta = vector
        sender, receiver_end = shm_pair
        sender.send(golden_meta)
        sender.send(golden_data)
        meta = receiver_end.recv(timeout=5)
        assert meta == golden_meta
        receiver = _learned_receiver(meta)
        # Zero-copy receive: decode straight from ring memory.
        data = receiver_end.recv_view(timeout=5)
        assert bytes(data) == golden_data
        assert_matches_record(receiver.decode(data), record)

    def test_shm_transits_golden_batch_iov(
        self, batch_vector, fresh_registry, shm_pair
    ):
        _, context, fmt, records, golden_batch, golden_meta = batch_vector
        sender, receiver_end = shm_pair
        sender.send(golden_meta)
        # Vectored send: the iovec parts land sequentially in one ring
        # frame, yet must arrive byte-identical to the pinned batch.
        sender.send_batch(context.encode_batch_iov(fmt, records))
        meta = receiver_end.recv(timeout=5)
        assert meta == golden_meta
        receiver = _learned_receiver(meta)
        data = receiver_end.recv_view(timeout=5)
        assert bytes(data) == golden_batch
        for decoded, record in zip(receiver.decode_batch(data), records):
            assert_matches_record(decoded, record)
