"""Unit tests for generated XDR stubs (rpcgen analogue)."""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import WireError
from repro.pbio import IOContext, IOField
from repro.wire.xdr import XDRCodec
from repro.wire.xdrgen import generate_xdr_source, make_generated_xdr

from tests.pbio.conftest import ASDOFF_RECORD, register_asdoff


class TestByteParity:
    def test_paper_structure_identical_to_interpreted(self, any_arch):
        fmt = register_asdoff(IOContext(any_arch))
        encode, decode = make_generated_xdr(fmt)
        baseline = XDRCodec(fmt)
        wire = encode(ASDOFF_RECORD)
        assert wire == baseline.encode(ASDOFF_RECORD)
        assert decode(wire) == baseline.decode(wire) == ASDOFF_RECORD

    def test_all_field_shapes(self, x86_context):
        inner = x86_context.register_format(
            "inner",
            [IOField("tag", "char[3]", 1, 0), IOField("v", "float", 4, 4)],
        )
        fmt = x86_context.register_format(
            "outer",
            [
                IOField("c", "char", 1, 0),
                IOField("b", "boolean", 1, 1),
                IOField("s16", "integer", 2, 2),
                IOField("u64", "unsigned integer", 8, 8),
                IOField("name", "string", 8, 16),
                IOField("names", "string[2]", 8, 24),
                IOField("trio", "integer[3]", 4, 40),
                IOField("n", "integer", 4, 52),
                IOField("data", "double[n]", 8, 56),
                IOField("one", "inner", 8, 64),
                IOField("pair", "inner[2]", 8, 72),
                IOField("flags", "boolean[2]", 1, 88),
            ],
            record_length=96,
        )
        record = {
            "c": "Z", "b": True, "s16": -5, "u64": 2**40,
            "name": "hello", "names": [None, ""],
            "trio": [1, 2, 3], "n": 2, "data": [0.5, 1.5],
            "one": {"tag": "ab", "v": 0.25},
            "pair": [{"tag": "x", "v": 1.0}, {"tag": "yz", "v": 2.0}],
            "flags": [True, False],
        }
        encode, decode = make_generated_xdr(fmt)
        baseline = XDRCodec(fmt)
        wire = encode(record)
        assert wire == baseline.encode(record)
        assert decode(wire) == baseline.decode(wire) == record

    def test_empty_and_null_values(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [
                IOField("s", "string", 8, 0),
                IOField("n", "integer", 4, 8),
                IOField("d", "double[n]", 8, 16),
            ],
            record_length=24,
        )
        encode, decode = make_generated_xdr(fmt)
        baseline = XDRCodec(fmt)
        for record in ({"s": None, "n": 0, "d": []}, {"s": "", "n": 1, "d": [7.0]}):
            assert encode(record) == baseline.encode(record)
            assert decode(encode(record)) == record


class TestGeneratedShape:
    def test_contiguous_scalars_batch_into_one_pack(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField(f"f{i}", "integer", 4, 4 * i) for i in range(6)],
        )
        source = generate_xdr_source(fmt)
        assert source.count("pack('>iiiiii'") == 1

    def test_decode_batches_too(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField(f"f{i}", "integer", 4, 4 * i) for i in range(4)],
        )
        source = generate_xdr_source(fmt)
        assert "unpack_from('>iiii'" in source


class TestErrorBehaviour:
    def test_trailing_bytes_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        _, decode = make_generated_xdr(fmt)
        with pytest.raises(WireError, match="trailing"):
            decode(b"\x00\x00\x00\x01\x00")

    def test_missing_field_falls_back_to_precise_error(self, x86_context):
        fmt = x86_context.register_format(
            "t", [IOField("v", "integer", 4, 0), IOField("s", "string", 8, 8)]
        )
        encode, _ = make_generated_xdr(fmt)
        with pytest.raises(WireError, match="missing field"):
            encode({"v": 1})

    def test_derived_count_via_fallback(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField("n", "integer", 4, 0), IOField("d", "integer[n]", 4, 8)],
            record_length=16,
        )
        encode, decode = make_generated_xdr(fmt)
        assert decode(encode({"d": [4, 5]}))["n"] == 2
