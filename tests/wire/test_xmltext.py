"""Unit tests for the text-XML wire-format baseline."""

import pytest

from repro.errors import WireError
from repro.pbio import IOContext, IOField
from repro.wire import XMLTextCodec
from repro.wire.xmltext import xml_encoded_size

from tests.pbio.conftest import ASDOFF_RECORD, register_asdoff


class TestRoundtrip:
    def test_paper_structure_roundtrips(self, any_arch):
        ctx = IOContext(any_arch)
        codec = XMLTextCodec(register_asdoff(ctx))
        assert codec.decode(codec.encode(ASDOFF_RECORD)) == ASDOFF_RECORD

    def test_output_is_wellformed_ascii_xml(self, sparc_context):
        codec = XMLTextCodec(register_asdoff(sparc_context))
        text = codec.encode(ASDOFF_RECORD).decode("utf-8")
        assert text.startswith('<?xml version="1.0"?><asdOff>')
        assert "<fltNum>1204</fltNum>" in text
        assert text.count("<off>") == 5

    def test_nested_formats_nest_elements(self, x86_context):
        inner = x86_context.register_format(
            "pt", [IOField("x", "double", 8, 0), IOField("y", "double", 8, 8)]
        )
        fmt = x86_context.register_format(
            "seg",
            [IOField("a", "pt", 16, 0), IOField("b", "pt", 16, 16)],
        )
        record = {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0, "y": 4.0}}
        codec = XMLTextCodec(fmt)
        text = codec.encode(record).decode("utf-8")
        assert "<a><x>1.0</x><y>2.0</y></a>" in text
        assert codec.decode(codec.encode(record)) == record

    def test_null_vs_empty_string(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField("a", "string", 8, 0), IOField("b", "string", 8, 8)],
        )
        codec = XMLTextCodec(fmt)
        record = {"a": None, "b": ""}
        text = codec.encode(record).decode("utf-8")
        assert '<a nil="true"/>' in text
        assert codec.decode(codec.encode(record)) == record

    def test_markup_in_values_escaped(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("s", "string", 8, 0)])
        codec = XMLTextCodec(fmt)
        record = {"s": "a <b> & 'c'"}
        assert codec.decode(codec.encode(record)) == record

    def test_empty_dynamic_array(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [IOField("n", "integer", 4, 0), IOField("d", "double[n]", 8, 8)],
            record_length=16,
        )
        codec = XMLTextCodec(fmt)
        assert codec.decode(codec.encode({"n": 0, "d": []})) == {"n": 0, "d": []}

    def test_booleans_and_chars(self, x86_context):
        fmt = x86_context.register_format(
            "t",
            [
                IOField("b", "boolean", 1, 0),
                IOField("c", "char", 1, 1),
                IOField("tag", "char[4]", 1, 2),
            ],
        )
        codec = XMLTextCodec(fmt)
        record = {"b": False, "c": "x", "tag": "ATL"}
        assert codec.decode(codec.encode(record)) == record


class TestErrors:
    def test_wrong_root_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="expected <t>"):
            XMLTextCodec(fmt).decode(b"<other><v>1</v></other>")

    def test_malformed_xml_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="cannot parse"):
            XMLTextCodec(fmt).decode(b"<t><v>1</t>")

    def test_bad_number_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="bad value"):
            XMLTextCodec(fmt).decode(b"<t><v>twelve</v></t>")

    def test_unexpected_element_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="unexpected element"):
            XMLTextCodec(fmt).decode(b"<t><v>1</v><w>2</w></t>")

    def test_missing_field_at_encode_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer", 4, 0)])
        with pytest.raises(WireError, match="missing field"):
            XMLTextCodec(fmt).encode({})

    def test_control_characters_unrepresentable(self, x86_context):
        """Binary formats carry control characters in strings; XML 1.0
        simply cannot.  The codec reports that honestly at encode time
        instead of emitting an unparseable document."""
        fmt = x86_context.register_format("t", [IOField("s", "string", 8, 0)])
        with pytest.raises(WireError, match="no XML 1.0 representation"):
            XMLTextCodec(fmt).encode({"s": "bell\x07"})

    def test_wrong_array_count_rejected(self, x86_context):
        fmt = x86_context.register_format("t", [IOField("v", "integer[3]", 4, 0)])
        with pytest.raises(WireError, match="expects 3"):
            XMLTextCodec(fmt).decode(b"<t><v>1</v><v>2</v></t>")


class TestExpansionFactor:
    """The paper (§6, citing [1]): 6-8x expansion is not unusual."""

    def test_xml_much_larger_than_ndr(self, sparc_context):
        fmt = register_asdoff(sparc_context)
        ndr_payload = len(sparc_context.encode(fmt, ASDOFF_RECORD)) - 16
        xml_size = xml_encoded_size(fmt, ASDOFF_RECORD)
        assert xml_size > 3 * ndr_payload

    def test_numeric_data_expands_hard(self, x86_context):
        """Binary doubles are 8 bytes; their decimal text plus markup is
        several times that."""
        fmt = x86_context.register_format(
            "t",
            [IOField("n", "integer", 4, 0), IOField("d", "double[n]", 8, 8)],
            record_length=16,
        )
        record = {"n": 100, "d": [i * 0.123456789 for i in range(100)]}
        xml_size = xml_encoded_size(fmt, record)
        binary_size = 100 * 8
        # ~19 chars of decimal text plus 7 of markup per 8-byte double;
        # with realistic (longer) element names this exceeds the paper's
        # 6x, with a one-letter name it is still >2x.
        assert xml_size > 2 * binary_size
