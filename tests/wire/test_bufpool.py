"""Unit tests for the size-classed buffer pool."""

import threading

from repro.obs.metrics import Registry, set_registry
from repro.wire.bufpool import (
    MAX_CLASS,
    MIN_CLASS,
    BufferPool,
    _class_for,
    get_pool,
    set_pool,
)


class TestSizeClasses:
    def test_rounds_up_to_power_of_two(self):
        assert _class_for(1) == MIN_CLASS
        assert _class_for(MIN_CLASS) == MIN_CLASS
        assert _class_for(MIN_CLASS + 1) == MIN_CLASS * 2
        assert _class_for(1000) == 1024
        assert _class_for(1024) == 1024
        assert _class_for(1025) == 2048

    def test_acquire_returns_class_sized_buffer(self):
        pool = BufferPool()
        buffer = pool.acquire(300)
        assert isinstance(buffer, bytearray)
        assert len(buffer) == 512


class TestReuse:
    def test_release_then_acquire_is_a_hit(self):
        pool = BufferPool()
        first = pool.acquire(100)
        assert pool.misses == 1
        pool.release(first)
        second = pool.acquire(200)  # same 256-byte class
        assert second is first
        assert pool.hits == 1

    def test_different_classes_do_not_mix(self):
        pool = BufferPool()
        small = pool.acquire(100)
        pool.release(small)
        big = pool.acquire(5000)
        assert big is not small
        assert len(big) == 8192

    def test_oversize_never_pooled(self):
        pool = BufferPool()
        huge = pool.acquire(MAX_CLASS + 1)
        assert len(huge) == MAX_CLASS + 1
        pool.release(huge)
        assert pool.stats()["pooled_buffers"] == 0
        again = pool.acquire(MAX_CLASS + 1)
        assert again is not huge

    def test_odd_sized_release_ignored(self):
        pool = BufferPool()
        pool.release(bytearray(300))  # not a size class
        assert pool.stats()["pooled_buffers"] == 0

    def test_per_class_cap_respected(self):
        pool = BufferPool(max_per_class=2)
        buffers = [bytearray(MIN_CLASS) for _ in range(5)]
        for buffer in buffers:
            pool.release(buffer)
        assert pool.stats()["pooled_buffers"] == 2

    def test_hit_rate(self):
        pool = BufferPool()
        assert pool.hit_rate == 0.0
        buffer = pool.acquire(10)
        pool.release(buffer)
        pool.acquire(10)
        assert pool.hit_rate == 0.5


class TestThreadSafety:
    def test_concurrent_acquire_release(self):
        pool = BufferPool(max_per_class=32)
        errors = []

        def worker():
            try:
                for _ in range(200):
                    buffer = pool.acquire(1024)
                    buffer[0] = 1
                    pool.release(buffer)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = pool.stats()
        assert stats["hits"] + stats["misses"] == 8 * 200


class TestObservability:
    def test_hit_miss_counters_mirrored_to_registry(self, fresh_registry):
        pool = BufferPool()
        buffer = pool.acquire(100)
        pool.release(buffer)
        pool.acquire(100)
        series = fresh_registry.snapshot()["bufpool_events_total"]
        assert series[(("event", "hit"),)] == 1
        assert series[(("event", "miss"),)] == 1

    def test_disabled_registry_still_counts_locally(self):
        previous = set_registry(Registry(enabled=False))
        try:
            pool = BufferPool()
            pool.acquire(100)
            assert pool.misses == 1
        finally:
            set_registry(previous)


class TestDefaultPool:
    def test_get_set_roundtrip(self):
        original = get_pool()
        try:
            fresh = BufferPool()
            assert set_pool(fresh) is fresh
            assert get_pool() is fresh
        finally:
            set_pool(original)
