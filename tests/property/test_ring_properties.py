"""Hypothesis invariants for the consistent-hash ring.

Two properties make consistent hashing worth its name, and both are
pinned here rather than assumed:

- **balance** — with virtual nodes, no shard owns more than ~2x its
  fair share of a key population (and none starves below half);
- **minimal movement** — adding or removing one shard remaps only the
  keys that shard gains or loses: every key that stays must map to the
  same shard before and after, and the moved fraction is on the order
  of ``1/shards``, not a full reshuffle.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import HashRing

#: Enough keys that the fair-share ratio is statistics, not noise.
KEY_COUNT = 2000

shard_counts = st.integers(min_value=2, max_value=10)
key_prefixes = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=0,
    max_size=12,
)


def shard_names(count: int) -> list[str]:
    return [f"shard-{index}" for index in range(count)]


def keys(prefix: str) -> list[str]:
    return [f"/{prefix}/doc-{index}.xsd" for index in range(KEY_COUNT)]


class TestBalance:
    @settings(max_examples=25, deadline=None)
    @given(count=shard_counts, prefix=key_prefixes)
    def test_no_shard_exceeds_twice_fair_share(self, count, prefix):
        ring = HashRing(shard_names(count))
        loads = {name: 0 for name in shard_names(count)}
        for key in keys(prefix):
            loads[ring.shard_for(key)] += 1
        fair = KEY_COUNT / count
        assert max(loads.values()) <= 2.0 * fair
        # and no shard is starved to nothing
        assert min(loads.values()) > 0

    @settings(max_examples=25, deadline=None)
    @given(count=shard_counts, prefix=key_prefixes)
    def test_every_shard_reachable(self, count, prefix):
        ring = HashRing(shard_names(count))
        owners = {ring.shard_for(key) for key in keys(prefix)}
        assert owners == set(shard_names(count))


class TestMinimalMovement:
    @settings(max_examples=25, deadline=None)
    @given(count=shard_counts, prefix=key_prefixes)
    def test_join_moves_only_keys_the_new_shard_gains(self, count, prefix):
        before = HashRing(shard_names(count))
        after = HashRing(shard_names(count) + ["shard-joining"])
        moved = 0
        for key in keys(prefix):
            old, new = before.shard_for(key), after.shard_for(key)
            if old != new:
                # A key may only move TO the joining shard; any other
                # movement would be a gratuitous reshuffle.
                assert new == "shard-joining", (key, old, new)
                moved += 1
        # The joining shard takes about 1/(count+1) of the keys; allow
        # a generous 2.5x for hash variance at small vnode*shard counts.
        assert moved <= 2.5 * KEY_COUNT / (count + 1)

    @settings(max_examples=25, deadline=None)
    @given(count=shard_counts, prefix=key_prefixes)
    def test_leave_moves_only_the_leavers_keys(self, count, prefix):
        names = shard_names(count + 1)
        before = HashRing(names)
        leaver = names[-1]
        after = HashRing(names[:-1])
        for key in keys(prefix):
            old, new = before.shard_for(key), after.shard_for(key)
            if old != leaver:
                # Keys of surviving shards must not move at all.
                assert old == new, (key, old, new)

    @settings(max_examples=15, deadline=None)
    @given(count=shard_counts, prefix=key_prefixes)
    def test_join_then_leave_is_identity(self, count, prefix):
        base = HashRing(shard_names(count))
        round_trip = HashRing(shard_names(count))
        for key in keys(prefix)[:200]:
            assert base.shard_for(key) == round_trip.shard_for(key)
