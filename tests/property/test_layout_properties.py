"""Property-based invariants of the struct layout engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import FieldDecl, layout_struct
from repro.arch.layout import naive_layout_size
from repro.arch.registry import all_architectures

_TYPES = [
    "char", "signed char", "unsigned char", "short", "int", "long",
    "long long", "float", "double", "char*", "void*",
]

field_lists = st.lists(
    st.tuples(
        st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True),
        st.sampled_from(_TYPES),
        st.one_of(st.none(), st.integers(1, 5)),
    ),
    min_size=1,
    max_size=12,
    unique_by=lambda t: t[0],
)

arches = st.sampled_from(all_architectures())

QUICK = settings(max_examples=120, deadline=None)


def build(arch, raw_fields):
    decls = [FieldDecl(name, ctype, count) for name, ctype, count in raw_fields]
    return layout_struct(arch, "P", decls), decls


class TestLayoutInvariants:
    @QUICK
    @given(arch=arches, raw=field_lists)
    def test_every_field_is_aligned(self, arch, raw):
        layout, _ = build(arch, raw)
        for slot in layout.slots:
            assert slot.offset % slot.alignment == 0

    @QUICK
    @given(arch=arches, raw=field_lists)
    def test_fields_do_not_overlap_and_preserve_order(self, arch, raw):
        layout, _ = build(arch, raw)
        cursor = 0
        for slot in layout.slots:
            assert slot.offset >= cursor
            cursor = slot.offset + slot.size
        assert cursor <= layout.size

    @QUICK
    @given(arch=arches, raw=field_lists)
    def test_size_is_multiple_of_alignment(self, arch, raw):
        layout, _ = build(arch, raw)
        assert layout.size % layout.alignment == 0

    @QUICK
    @given(arch=arches, raw=field_lists)
    def test_size_bounded_below_by_naive_sum(self, arch, raw):
        layout, decls = build(arch, raw)
        assert layout.size >= naive_layout_size(arch, decls)

    @QUICK
    @given(arch=arches, raw=field_lists)
    def test_padding_bounded_by_alignment_per_field(self, arch, raw):
        """Total padding never exceeds (alignment - 1) per field plus
        tail padding — the worst any C compiler inserts."""
        layout, _ = build(arch, raw)
        worst = sum(slot.alignment - 1 for slot in layout.slots) + (
            layout.alignment - 1
        )
        assert layout.total_padding <= worst

    @QUICK
    @given(arch=arches, raw=field_lists)
    def test_layout_deterministic(self, arch, raw):
        first, _ = build(arch, raw)
        second, _ = build(arch, raw)
        assert first == second

    @QUICK
    @given(arch=arches, raw=field_lists)
    def test_nesting_is_size_transparent(self, arch, raw):
        """Wrapping a struct as the single member of an outer struct
        never changes its size."""
        inner, _ = build(arch, raw)
        outer = layout_struct(arch, "O", [FieldDecl("in_", inner)])
        assert outer.size == inner.size
        assert outer.alignment == inner.alignment

    @QUICK
    @given(arch=arches, raw=field_lists, count=st.integers(1, 4))
    def test_arrays_tile_exactly(self, arch, raw, count):
        """An array of N structs occupies exactly N * sizeof(struct) —
        the reason tail padding exists."""
        inner, _ = build(arch, raw)
        outer = layout_struct(arch, "O", [FieldDecl("arr", inner, count)])
        assert outer.slot("arr").size == count * inner.size
