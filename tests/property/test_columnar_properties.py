"""Property-based invariants for the columnar bulk codec.

For any (non-nested) schema the metadata grammar can express and any
batch of records fitting it, across sender/receiver architecture pairs:

- ``decode_batch(encode_batch(records))`` is the identity on records;
- the columnar round-trip equals N per-record NDR round-trips,
  field for field — batching never changes what a receiver sees;
- the numpy and pure-Python encode paths produce identical bytes, and
  their decode paths produce identical records.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IOContext, XML2Wire
from repro.arch import ALPHA, SPARC_32, SPARC_64, X86_32, X86_64
from repro.pbio.columnar import _numpy_or_none

from tests.property.strategies import schema_and_records

ARCHES = [X86_32, X86_64, SPARC_32, SPARC_64, ALPHA]

arch_pairs = st.tuples(st.sampled_from(ARCHES), st.sampled_from(ARCHES))

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

HAVE_NUMPY = _numpy_or_none() is not None


def register(schema, format_name, arch):
    tool = XML2Wire(IOContext(arch))
    tool.register_schema(schema)
    return tool.context, tool.context.lookup_format(format_name)


class TestColumnarRoundtrip:
    @RELAXED
    @given(case=schema_and_records(), pair=arch_pairs)
    def test_cross_architecture_identity(self, case, pair):
        schema, format_name, records = case
        sender_arch, receiver_arch = pair
        sender, fmt = register(schema, format_name, sender_arch)
        message = sender.encode_batch(fmt, records)
        receiver = IOContext(receiver_arch)
        receiver.learn_format(fmt.to_wire_metadata())
        batch = receiver.decode_batch(message)
        assert list(batch) == records

    @RELAXED
    @given(case=schema_and_records(), pair=arch_pairs)
    def test_batch_equals_per_record_roundtrips(self, case, pair):
        """One columnar batch decodes to exactly what N per-record NDR
        messages would have decoded to, field for field."""
        schema, format_name, records = case
        sender_arch, receiver_arch = pair
        sender, fmt = register(schema, format_name, sender_arch)
        receiver = IOContext(receiver_arch)
        receiver.learn_format(fmt.to_wire_metadata())
        batched = receiver.decode_batch(sender.encode_batch(fmt, records))
        singles = [
            receiver.decode(sender.encode(fmt, record)).values
            for record in records
        ]
        assert len(batched) == len(singles)
        for from_batch, from_single in zip(batched, singles):
            assert set(from_batch) == set(from_single)
            for field in from_single:
                assert from_batch[field] == from_single[field], field

    @RELAXED
    @given(case=schema_and_records(), arch=st.sampled_from(ARCHES))
    def test_pure_python_roundtrip(self, case, arch):
        schema, format_name, records = case
        sender, fmt = register(schema, format_name, arch)
        message = sender.encode_batch(fmt, records, use_numpy=False)
        receiver = IOContext()
        receiver.learn_format(fmt.to_wire_metadata())
        assert list(receiver.decode_batch(message, use_numpy=False)) == records


class TestNumpyPureParity:
    """The two implementations are byte- and value-interchangeable."""

    @RELAXED
    @given(case=schema_and_records(), arch=st.sampled_from(ARCHES))
    def test_encode_paths_byte_identical(self, case, arch):
        if not HAVE_NUMPY:
            return  # single-path build: parity is vacuous
        schema, format_name, records = case
        sender, fmt = register(schema, format_name, arch)
        pure = sender.encode_batch(fmt, records, use_numpy=False)
        vectorized = sender.encode_batch(fmt, records, use_numpy=True)
        assert pure == vectorized

    @RELAXED
    @given(case=schema_and_records(), pair=arch_pairs)
    def test_decode_paths_agree(self, case, pair):
        if not HAVE_NUMPY:
            return
        schema, format_name, records = case
        sender_arch, receiver_arch = pair
        sender, fmt = register(schema, format_name, sender_arch)
        message = sender.encode_batch(fmt, records)
        receiver = IOContext(receiver_arch)
        receiver.learn_format(fmt.to_wire_metadata())
        pure = list(receiver.decode_batch(message, use_numpy=False))
        vectorized = list(receiver.decode_batch(message, use_numpy=True))
        assert pure == vectorized == records
