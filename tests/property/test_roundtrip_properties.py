"""Property-based roundtrip invariants across the whole stack.

For any schema the metadata grammar can express and any record fitting
it, and for any (sender, receiver) architecture pair:

- NDR encode/decode is the identity on records;
- generated and interpreted converters agree;
- XDR and text XML round-trip the same record;
- format metadata survives serialization with its identity intact.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IOContext, XDRCodec, XMLTextCodec, XML2Wire
from repro.arch import ALPHA, SPARC_32, SPARC_64, X86_32, X86_64
from repro.pbio.codegen import make_generated_converter, make_interpreted_converter
from repro.pbio.encode import encode_record
from repro.pbio.format import IOFormat

from tests.property.strategies import schema_and_record

ARCHES = [X86_32, X86_64, SPARC_32, SPARC_64, ALPHA]

arch_pairs = st.tuples(st.sampled_from(ARCHES), st.sampled_from(ARCHES))

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def register(schema, format_name, arch):
    tool = XML2Wire(IOContext(arch))
    tool.register_schema(schema)
    return tool.context, tool.context.lookup_format(format_name)


class TestNDRRoundtrip:
    @RELAXED
    @given(case=schema_and_record(), pair=arch_pairs)
    def test_cross_architecture_identity(self, case, pair):
        schema, format_name, record = case
        sender_arch, receiver_arch = pair
        sender, fmt = register(schema, format_name, sender_arch)
        message = sender.encode(fmt, record)
        receiver = IOContext(receiver_arch)
        receiver.learn_format(fmt.to_wire_metadata())
        assert receiver.decode(message).values == record

    @RELAXED
    @given(case=schema_and_record(nested=True), pair=arch_pairs)
    def test_nested_cross_architecture_identity(self, case, pair):
        schema, format_name, record = case
        sender_arch, receiver_arch = pair
        sender, fmt = register(schema, format_name, sender_arch)
        message = sender.encode(fmt, record)
        receiver = IOContext(receiver_arch)
        receiver.learn_format(fmt.to_wire_metadata())
        assert receiver.decode(message).values == record

    @RELAXED
    @given(case=schema_and_record(), arch=st.sampled_from(ARCHES))
    def test_generated_equals_interpreted(self, case, arch):
        schema, format_name, record = case
        _, fmt = register(schema, format_name, arch)
        payload = encode_record(fmt, record)
        assert make_generated_converter(fmt)(payload) == \
            make_interpreted_converter(fmt)(payload)

    @RELAXED
    @given(case=schema_and_record(), arch=st.sampled_from(ARCHES))
    def test_encode_deterministic(self, case, arch):
        schema, format_name, record = case
        sender, fmt = register(schema, format_name, arch)
        payload_one = encode_record(fmt, record)
        payload_two = encode_record(fmt, record)
        assert payload_one == payload_two


class TestBaselineRoundtrips:
    @RELAXED
    @given(case=schema_and_record(), arch=st.sampled_from(ARCHES))
    def test_xdr_identity(self, case, arch):
        schema, format_name, record = case
        _, fmt = register(schema, format_name, arch)
        codec = XDRCodec(fmt)
        assert codec.decode(codec.encode(record)) == record

    @RELAXED
    @given(case=schema_and_record(), arch=st.sampled_from(ARCHES))
    def test_xmltext_identity(self, case, arch):
        schema, format_name, record = case
        _, fmt = register(schema, format_name, arch)
        codec = XMLTextCodec(fmt)
        assert codec.decode(codec.encode(record)) == record

    @RELAXED
    @given(case=schema_and_record(), arch=st.sampled_from(ARCHES))
    def test_cdr_identity(self, case, arch):
        from repro.wire import CDRCodec

        schema, format_name, record = case
        _, fmt = register(schema, format_name, arch)
        codec = CDRCodec(fmt)
        assert codec.decode(codec.encode(record)) == record


class TestMetadataProperties:
    @RELAXED
    @given(case=schema_and_record(nested=True), arch=st.sampled_from(ARCHES))
    def test_wire_metadata_roundtrip_preserves_identity(self, case, arch):
        schema, format_name, record = case
        _, fmt = register(schema, format_name, arch)
        again = IOFormat.from_wire_metadata(fmt.to_wire_metadata())
        assert again.format_id == fmt.format_id
        assert again.record_length == fmt.record_length
        assert [f.name for f in again.fields] == [f.name for f in fmt.fields]

    @RELAXED
    @given(case=schema_and_record(), pair=arch_pairs)
    def test_format_ids_differ_across_architectures_when_layouts_do(
        self, case, pair
    ):
        schema, format_name, record = case
        arch_a, arch_b = pair
        _, fmt_a = register(schema, format_name, arch_a)
        _, fmt_b = register(schema, format_name, arch_b)
        if arch_a == arch_b:
            assert fmt_a.format_id == fmt_b.format_id
        else:
            # Same name but potentially different layouts; ids must match
            # exactly when the full metadata matches.
            same_metadata = fmt_a.to_wire_metadata() == fmt_b.to_wire_metadata()
            assert (fmt_a.format_id == fmt_b.format_id) == same_metadata

    @RELAXED
    @given(case=schema_and_record(), arch=st.sampled_from(ARCHES))
    def test_registration_idempotent(self, case, arch):
        schema, format_name, record = case
        tool = XML2Wire(IOContext(arch))
        first = tool.register_schema(schema)
        second = tool.register_schema(schema)
        assert [f.format_id for f in first] == [f.format_id for f in second]
