"""Hypothesis strategies generating (schema, record) pairs.

The generated schemas exercise the full metadata grammar: every
primitive kind, strings, static arrays, dynamic arrays, and one level of
nesting.  Value strategies are constrained to what survives any modeled
architecture (ILP32 integer bounds, float32-exact floats, NUL-free
strings), so a generated record must round-trip across *every*
(sender, receiver) pair.
"""

from __future__ import annotations

import struct

from hypothesis import strategies as st

_XSD = "http://www.w3.org/1999/XMLSchema"

_NAMES = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)

# Control characters are excluded: they are fine in NDR/XDR strings but
# have no XML 1.0 representation, and these strategies feed all three
# wire formats.  (repro.wire.xmltext raises WireError on them; see
# tests/wire/test_xmltext.py.)
_TEXT = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
    ),
    max_size=24,
)

_ASCII_WORD = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
    max_size=8,
)


def _f32(value: float) -> float:
    return struct.unpack("f", struct.pack("f", value))[0]


#: (xsd type name, value strategy) for every primitive we marshal.
PRIMITIVES: list[tuple[str, st.SearchStrategy]] = [
    ("integer", st.integers(-(2**31), 2**31 - 1)),
    ("int", st.integers(-(2**31), 2**31 - 1)),
    ("short", st.integers(-(2**15), 2**15 - 1)),
    ("byte", st.integers(-128, 127)),
    ("unsigned-long", st.integers(0, 2**32 - 1)),  # ILP32 long is 4 bytes
    ("unsigned-int", st.integers(0, 2**32 - 1)),
    ("unsigned-short", st.integers(0, 2**16 - 1)),
    ("double", st.floats(allow_nan=False, allow_infinity=False, width=64)),
    ("float", st.floats(allow_nan=False, allow_infinity=False, width=32).map(_f32)),
    ("boolean", st.booleans()),
    ("char", st.characters(min_codepoint=0x20, max_codepoint=0x7E)),
    ("string", st.one_of(st.none(), _TEXT)),
]

_PRIMITIVE_INDEX = st.integers(0, len(PRIMITIVES) - 1)


@st.composite
def element_spec(draw, name: str):
    """One element: returns (schema line, value strategy resolver)."""
    index = draw(_PRIMITIVE_INDEX)
    xsd_type, values = PRIMITIVES[index]
    shape = draw(st.sampled_from(["scalar", "scalar", "fixed", "dynamic"]))
    if xsd_type == "string" and shape == "dynamic":
        shape = "scalar"
    if xsd_type == "char" and shape == "dynamic":
        shape = "scalar"
    if shape == "scalar":
        line = f'<xsd:element name="{name}" type="xsd:{xsd_type}" />'
        return line, ("scalar", values, None)
    if shape == "fixed":
        # maxOccurs="1" means scalar to the parser, so fixed arrays
        # start at 2 elements.
        count = draw(st.integers(2, 4))
        line = (
            f'<xsd:element name="{name}" type="xsd:{xsd_type}" '
            f'minOccurs="{count}" maxOccurs="{count}" />'
        )
        if xsd_type == "char":
            # Char arrays are fixed text buffers: ASCII, shorter than count.
            buffer_values = st.text(
                alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x7E),
                max_size=count,
            ).filter(lambda s: "\x00" not in s)
            return line, ("charbuf", buffer_values, count)
        if xsd_type == "string":
            return line, ("list", st.one_of(st.none(), _ASCII_WORD), count)
        return line, ("list", values, count)
    # dynamic
    line = (
        f'<xsd:element name="{name}" type="xsd:{xsd_type}" '
        f'minOccurs="0" maxOccurs="*" />'
    )
    return line, ("dynlist", values, None)


@st.composite
def schema_and_record(draw, max_fields: int = 6, nested: bool = False):
    """A full (schema text, format name, record dict) triple."""
    field_count = draw(st.integers(1, max_fields))
    names = draw(
        st.lists(_NAMES, min_size=field_count, max_size=field_count, unique=True)
    )
    lines: list[str] = []
    record: dict = {}
    for name in names:
        line, (shape, values, count) = draw(element_spec(name))
        lines.append("    " + line)
        if shape == "scalar":
            record[name] = draw(values)
        elif shape == "charbuf":
            record[name] = draw(values)
        elif shape == "list":
            record[name] = [draw(values) for _ in range(count)]
        else:  # dynlist
            length = draw(st.integers(0, 5))
            record[name] = [draw(values) for _ in range(length)]
            record[f"{name}_count"] = length
    body = "\n".join(lines)
    inner_block = ""
    if nested:
        nested_field = draw(_NAMES.filter(lambda n: n not in names))
        inner_block = (
            '  <xsd:complexType name="InnerT">\n'
            '    <xsd:element name="iv" type="xsd:integer" />\n'
            '    <xsd:element name="is" type="xsd:string" />\n'
            "  </xsd:complexType>\n"
        )
        body += f'\n    <xsd:element name="{nested_field}" type="InnerT" />'
        record[nested_field] = {
            "iv": draw(st.integers(-(2**31), 2**31 - 1)),
            "is": draw(st.one_of(st.none(), _ASCII_WORD)),
        }
    schema = (
        '<?xml version="1.0"?>\n'
        f'<xsd:schema xmlns:xsd="{_XSD}">\n'
        f"{inner_block}"
        '  <xsd:complexType name="PropT">\n'
        f"{body}\n"
        "  </xsd:complexType>\n"
        "</xsd:schema>\n"
    )
    return schema, "PropT", record


@st.composite
def evolution_case(draw, max_fields: int = 5):
    """(wire schema, target schema, format name, wire record) quadruple.

    Both schemas share a pool of field specs; each field lands in the
    wire schema only (the receiver drops it), the target schema only
    (the receiver defaults it), or both (copied through).  The target's
    field order is an arbitrary permutation, so order-insensitivity is
    exercised on every draw.  Optionally one nested complex type is
    present on both sides — identical or itself evolved, covering the
    recursive projection path.
    """
    field_count = draw(st.integers(1, max_fields))
    names = draw(
        st.lists(
            _NAMES.filter(lambda n: n != "seq" and not n.endswith("_count")),
            min_size=field_count,
            max_size=field_count,
            unique=True,
        ).filter(
            lambda ns: not any(a + "_count" == b for a in ns for b in ns)
        )
    )
    # A shared anchor field keeps both schemas non-empty on every draw.
    wire_lines = ['    <xsd:element name="seq" type="xsd:integer" />']
    target_lines = list(wire_lines)
    record: dict = {"seq": draw(st.integers(-(2**31), 2**31 - 1))}
    for name in names:
        line, (shape, values, count) = draw(element_spec(name))
        fate = draw(st.sampled_from(["both", "both", "wire", "target"]))
        if fate in ("both", "wire"):
            wire_lines.append("    " + line)
            if shape in ("scalar", "charbuf"):
                record[name] = draw(values)
            elif shape == "list":
                record[name] = [draw(values) for _ in range(count)]
            else:  # dynlist
                length = draw(st.integers(0, 5))
                record[name] = [draw(values) for _ in range(length)]
                record[f"{name}_count"] = length
        if fate in ("both", "target"):
            target_lines.append("    " + line)
    target_lines = draw(st.permutations(target_lines))

    def inner_block(with_extra: bool) -> str:
        extra = (
            '    <xsd:element name="ik" type="xsd:integer" />\n'
            if with_extra
            else ""
        )
        return (
            '  <xsd:complexType name="InnerT">\n'
            '    <xsd:element name="iv" type="xsd:integer" />\n'
            '    <xsd:element name="is" type="xsd:string" />\n'
            f"{extra}"
            "  </xsd:complexType>\n"
        )

    nested_fate = draw(st.sampled_from(["none", "same", "wire_extra", "target_extra"]))
    wire_inner = target_inner = ""
    if nested_fate != "none":
        nested_name = draw(
            _NAMES.filter(lambda n: n not in names and n != "seq")
        )
        wire_inner = inner_block(nested_fate == "wire_extra")
        target_inner = inner_block(nested_fate == "target_extra")
        element = f'    <xsd:element name="{nested_name}" type="InnerT" />'
        wire_lines.append(element)
        target_lines = [*target_lines, element]
        record[nested_name] = {
            "iv": draw(st.integers(-(2**31), 2**31 - 1)),
            "is": draw(st.one_of(st.none(), _ASCII_WORD)),
        }
        if nested_fate == "wire_extra":
            record[nested_name]["ik"] = draw(st.integers(-(2**31), 2**31 - 1))

    def render(inner: str, lines: list) -> str:
        body = "\n".join(lines)
        return (
            '<?xml version="1.0"?>\n'
            f'<xsd:schema xmlns:xsd="{_XSD}">\n'
            f"{inner}"
            '  <xsd:complexType name="PropT">\n'
            f"{body}\n"
            "  </xsd:complexType>\n"
            "</xsd:schema>\n"
        )

    return render(wire_inner, wire_lines), render(target_inner, target_lines), "PropT", record


@st.composite
def schema_and_records(
    draw, max_fields: int = 6, min_records: int = 1, max_records: int = 8
):
    """One schema plus a *batch* of records sharing its shape.

    For the columnar codec: every record is drawn against the same field
    specs, so dynamic-array lengths vary per row while the format stays
    fixed.  Nesting is excluded — columnar batches reject nested formats
    by contract.
    """
    field_count = draw(st.integers(1, max_fields))
    names = draw(
        st.lists(_NAMES, min_size=field_count, max_size=field_count, unique=True)
    )
    lines: list[str] = []
    specs: list[tuple[str, tuple]] = []
    for name in names:
        line, spec = draw(element_spec(name))
        lines.append("    " + line)
        specs.append((name, spec))
    batch_size = draw(st.integers(min_records, max_records))
    records: list[dict] = []
    for _ in range(batch_size):
        record: dict = {}
        for name, (shape, values, count) in specs:
            if shape in ("scalar", "charbuf"):
                record[name] = draw(values)
            elif shape == "list":
                record[name] = [draw(values) for _ in range(count)]
            else:  # dynlist
                length = draw(st.integers(0, 5))
                record[name] = [draw(values) for _ in range(length)]
                record[f"{name}_count"] = length
        records.append(record)
    body = "\n".join(lines)
    schema = (
        '<?xml version="1.0"?>\n'
        f'<xsd:schema xmlns:xsd="{_XSD}">\n'
        '  <xsd:complexType name="PropT">\n'
        f"{body}\n"
        "  </xsd:complexType>\n"
        "</xsd:schema>\n"
    )
    return schema, "PropT", records
