"""Framing under truncation and corruption: fail typed, never hang.

Satellite of the fault-injection tentpole: for any framed stream, any
truncation point and any byte corruption, the framing layer must either
return a frame whose length matches its (possibly corrupted) prefix or
raise a typed :class:`~repro.errors.WireError` /
:class:`~repro.errors.ChannelClosedError` — and must always terminate,
because the ``recv`` callable these tests provide returns empty bytes at
exhaustion (a hang would mean calling ``recv`` forever on empty input).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import ChannelClosedError, WireError
from repro.wire.framing import (
    MAX_FRAME_SIZE,
    FrameDecoder,
    frame,
    read_frame,
    unframe,
)

RELAXED = settings(max_examples=200, deadline=None)

messages = st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=5)


def drained_recv(data: bytes, chunk_size: int):
    """A socket-style recv over a finite buffer; b'' at exhaustion."""
    state = {"offset": 0, "calls": 0}

    def recv(n: int) -> bytes:
        state["calls"] += 1
        assert state["calls"] < 10_000, "read loop did not terminate"
        take = min(n, chunk_size)
        chunk = data[state["offset"] : state["offset"] + take]
        state["offset"] += len(chunk)
        return chunk

    return recv


class TestTruncation:
    @RELAXED
    @given(messages, st.data())
    def test_truncated_stream_raises_typed_error(self, msgs, data):
        stream = b"".join(frame(m) for m in msgs)
        cut = data.draw(st.integers(min_value=0, max_value=max(0, len(stream) - 1)))
        chunk_size = data.draw(st.integers(min_value=1, max_value=16))
        recv = drained_recv(stream[:cut], chunk_size)
        recovered = []
        with pytest.raises((WireError, ChannelClosedError)):
            while True:
                recovered.append(read_frame(recv))
        # Everything recovered before the error is a prefix of the input.
        assert recovered == msgs[: len(recovered)]

    @RELAXED
    @given(messages, st.data())
    def test_decoder_never_yields_partial_frame(self, msgs, data):
        stream = b"".join(frame(m) for m in msgs)
        cut = data.draw(st.integers(min_value=0, max_value=len(stream)))
        decoder = FrameDecoder()
        decoder.feed(stream[:cut])
        recovered = list(decoder.messages())
        assert recovered == msgs[: len(recovered)]
        # Feeding the rest completes the exact original sequence.
        decoder.feed(stream[cut:])
        recovered.extend(decoder.messages())
        assert recovered == msgs
        assert decoder.pending_bytes == 0

    @RELAXED
    @given(st.binary(max_size=3))
    def test_unframe_rejects_short_input(self, data):
        with pytest.raises(WireError):
            unframe(data)


class TestCorruption:
    @RELAXED
    @given(messages, st.data())
    def test_corrupted_stream_never_hangs_or_mislengths(self, msgs, data):
        stream = bytearray(b"".join(frame(m) for m in msgs))
        position = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        stream[position] ^= 1 << bit
        recv = drained_recv(bytes(stream), chunk_size=7)
        try:
            while True:
                result = read_frame(recv)
                # Whatever came back must be internally consistent: its
                # length was dictated by the prefix just consumed.
                assert len(result) <= MAX_FRAME_SIZE
        except (WireError, ChannelClosedError):
            pass  # typed failure is the only acceptable non-success

    @RELAXED
    @given(st.data())
    def test_hostile_length_prefix_rejected_before_allocation(self, data):
        length = data.draw(
            st.integers(min_value=MAX_FRAME_SIZE + 1, max_value=0xFFFFFFFF)
        )
        stream = length.to_bytes(4, "big") + b"payload"
        recv = drained_recv(stream, chunk_size=16)
        with pytest.raises(WireError, match="exceeds limit"):
            read_frame(recv)
        decoder = FrameDecoder()
        decoder.feed(stream)
        with pytest.raises(WireError, match="exceeds limit"):
            list(decoder.messages())

    @RELAXED
    @given(messages, st.data())
    def test_single_byte_corruption_in_decoder(self, msgs, data):
        stream = bytearray(b"".join(frame(m) for m in msgs))
        position = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
        stream[position] ^= 0xFF
        decoder = FrameDecoder()
        decoder.feed(bytes(stream))
        try:
            for message in decoder.messages():
                assert len(message) <= MAX_FRAME_SIZE
        except WireError:
            pass
