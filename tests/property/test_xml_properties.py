"""Property-based invariants of the XML substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlparse import (
    escape_attribute,
    escape_text,
    parse_document,
    write_document,
)
from repro.xmlparse.tree import Element

QUICK = settings(max_examples=120, deadline=None)

xml_text = st.text(
    alphabet=st.characters(
        # Surrogates and control characters are not legal XML content;
        # \t and \n are the whitespace controls XML does allow (\r is
        # normalized away by design, so it cannot round-trip).
        blacklist_categories=("Cs", "Cc"),
        whitelist_characters="\t\n",
    ),
    max_size=60,
).filter(lambda s: "]]>" not in s)

names = st.from_regex(r"[a-zA-Z_][a-zA-Z0-9_.-]{0,10}", fullmatch=True)

attr_values = st.text(
    alphabet=st.characters(
        # No controls at all here: tab/newline normalize to spaces in
        # attribute values, so they cannot round-trip byte-exactly.
        blacklist_categories=("Cs", "Cc"),
    ),
    max_size=30,
)


@st.composite
def elements(draw, depth=2):
    element = Element(tag=draw(names))
    element.attributes = dict(
        draw(st.lists(st.tuples(names, attr_values), max_size=3, unique_by=lambda t: t[0]))
    )
    if depth > 0 and draw(st.booleans()):
        element.children = draw(st.lists(elements(depth=depth - 1), max_size=3))
    if not element.children:
        element.text = draw(xml_text)
    return element


class TestEscaping:
    @QUICK
    @given(text=xml_text)
    def test_escaped_text_roundtrips(self, text):
        document = f"<a>{escape_text(text)}</a>"
        assert parse_document(document).text == text.replace("\r", "\n")

    @QUICK
    @given(value=attr_values)
    def test_escaped_attribute_roundtrips(self, value):
        document = f'<a x="{escape_attribute(value)}"/>'
        assert parse_document(document).get("x") == value


class TestWriterParserInverse:
    @QUICK
    @given(root=elements())
    def test_write_then_parse_preserves_structure(self, root):
        reparsed = parse_document(write_document(root))
        assert _shape(reparsed) == _shape(root)

    @QUICK
    @given(root=elements())
    def test_serialization_is_stable(self, root):
        once = write_document(root)
        twice = write_document(parse_document(once))
        assert once == twice


def _shape(element):
    return (
        element.tag,
        tuple(sorted(element.attributes.items())),
        element.text if not element.children else "",
        tuple(_shape(child) for child in element.children),
    )
