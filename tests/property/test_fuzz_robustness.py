"""Fuzz-mutation properties: corruption never escapes the error types.

For any valid message and any single-byte mutation, decoding must either
succeed (payload-data mutations legitimately change values) or raise a
typed :class:`~repro.errors.ReproError` — never an unhandled exception,
never a hang.  Same for format metadata blocks and backbone envelopes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IOContext, SPARC_32, X86_64, XML2Wire
from repro.errors import ReproError
from repro.events.remote import unpack_envelope
from repro.pbio.format import IOFormat
from repro.wire import CDRCodec, XDRCodec
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload

RELAXED = settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _fixture():
    sender = IOContext(SPARC_32)
    XML2Wire(sender).register_schema(ASDOFF_B_SCHEMA)
    fmt = sender.lookup_format("ASDOffEvent")
    record = AirlineWorkload(seed=123).record_b()
    message = sender.encode(fmt, record)
    receiver = IOContext(X86_64)
    receiver.learn_format(fmt.to_wire_metadata())
    return fmt, record, message, receiver


FMT, RECORD, MESSAGE, RECEIVER = _fixture()
METADATA = FMT.to_wire_metadata()
XDR_WIRE = XDRCodec(FMT).encode(RECORD)
CDR_WIRE = CDRCodec(FMT).encode(RECORD)


def mutate(data: bytes, position: int, delta: int) -> bytes:
    mutated = bytearray(data)
    mutated[position % len(data)] = (mutated[position % len(data)] + delta) % 256
    return bytes(mutated)


class TestSingleByteMutations:
    @RELAXED
    @given(position=st.integers(0, len(MESSAGE) - 1), delta=st.integers(1, 255))
    def test_ndr_message_mutation_contained(self, position, delta):
        broken = mutate(MESSAGE, position, delta)
        try:
            RECEIVER.decode(broken)
        except ReproError:
            pass  # typed failure is fine

    @RELAXED
    @given(position=st.integers(0, len(METADATA) - 1), delta=st.integers(1, 255))
    def test_metadata_mutation_contained(self, position, delta):
        broken = mutate(METADATA, position, delta)
        try:
            IOFormat.from_wire_metadata(broken)
        except ReproError:
            pass

    @RELAXED
    @given(position=st.integers(0, len(XDR_WIRE) - 1), delta=st.integers(1, 255))
    def test_xdr_mutation_contained(self, position, delta):
        broken = mutate(XDR_WIRE, position, delta)
        try:
            XDRCodec(FMT).decode(broken)
        except ReproError:
            pass

    @RELAXED
    @given(position=st.integers(0, len(CDR_WIRE) - 1), delta=st.integers(1, 255))
    def test_cdr_mutation_contained(self, position, delta):
        broken = mutate(CDR_WIRE, position, delta)
        try:
            CDRCodec(FMT).decode(broken)
        except ReproError:
            pass

    @RELAXED
    @given(data=st.binary(max_size=64))
    def test_envelope_garbage_contained(self, data):
        try:
            unpack_envelope(data)
        except ReproError:
            pass

    @RELAXED
    @given(data=st.binary(max_size=64))
    def test_metadata_garbage_contained(self, data):
        try:
            IOFormat.from_wire_metadata(data)
        except ReproError:
            pass


class TestTruncationSweep:
    def test_every_prefix_of_every_artifact_contained(self):
        artifacts = [
            (MESSAGE, lambda d: RECEIVER.decode(d)),
            (METADATA, IOFormat.from_wire_metadata),
            (XDR_WIRE, XDRCodec(FMT).decode),
            (CDR_WIRE, CDRCodec(FMT).decode),
        ]
        for data, decoder in artifacts:
            for cut in range(len(data)):
                try:
                    decoder(data[:cut])
                except ReproError:
                    continue
                except Exception as exc:  # pragma: no cover - the assertion
                    pytest.fail(
                        f"untyped {type(exc).__name__} at truncation {cut}: {exc}"
                    )
