"""Property-based parity for compiled projections and fused converters.

For any (wire schema, evolved target schema) pair the metadata grammar
can express, any record fitting the wire schema, and any (sender,
receiver) architecture pair:

- the compiled (codegen) projection and the interpreted projection
  produce identical records;
- the fused decode+project converter and the interpreted
  decode-then-project composition produce identical records;
- defaulted mutable values are fresh objects on every call (no
  aliasing between decodes);
- when :func:`compare_formats` says no projection is needed, projecting
  is the identity.
"""

import copy

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IOContext, XML2Wire
from repro.arch import ALPHA, SPARC_32, SPARC_64, X86_32, X86_64
from repro.pbio.evolution import (
    Compatibility,
    compare_formats,
    generate_projection_source,
    make_interpreted_projection,
    make_projection,
)

from tests.property.strategies import evolution_case

ARCHES = [X86_32, X86_64, SPARC_32, SPARC_64, ALPHA]

arch_pairs = st.tuples(st.sampled_from(ARCHES), st.sampled_from(ARCHES))

RELAXED = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def register(schema, format_name, arch, **context_kwargs):
    tool = XML2Wire(IOContext(arch, **context_kwargs))
    tool.register_schema(schema)
    return tool.context, tool.context.lookup_format(format_name)


class TestProjectionParity:
    @RELAXED
    @given(case=evolution_case(), pair=arch_pairs)
    def test_compiled_equals_interpreted(self, case, pair):
        wire_schema, target_schema, name, record = case
        sender, wire = register(wire_schema, name, pair[0])
        _, target = register(target_schema, name, pair[1])
        decoded = IOContext(pair[1], use_fused=False)
        decoded.learn_format(wire.to_wire_metadata())
        wire_shaped = decoded.decode(sender.encode(wire, record)).values
        compiled = make_projection(wire, target, use_codegen=True)
        interpreted = make_interpreted_projection(wire, target)
        assert compiled(wire_shaped) == interpreted(wire_shaped)

    @RELAXED
    @given(case=evolution_case(), pair=arch_pairs)
    def test_fused_equals_interpreted_composition(self, case, pair):
        wire_schema, target_schema, name, record = case
        sender, wire = register(wire_schema, name, pair[0])
        # use_fused=True forces fusion: a fallback would mask a fused-
        # path generation failure.
        receiver, _ = register(target_schema, name, pair[1], use_fused=True)
        receiver.learn_format(wire.to_wire_metadata())
        message = sender.encode(wire, record)
        fused = receiver.decode(message, expect=name).values
        interpreted = receiver.decode(message, expect=name, mode="interpreted").values
        assert fused == interpreted

    @RELAXED
    @given(case=evolution_case(), pair=arch_pairs)
    def test_fused_equals_two_step(self, case, pair):
        wire_schema, target_schema, name, record = case
        sender, wire = register(wire_schema, name, pair[0])
        fused_rx, _ = register(target_schema, name, pair[1], use_fused=True)
        two_step_rx, _ = register(target_schema, name, pair[1], use_fused=False)
        message = sender.encode(wire, record)
        for receiver in (fused_rx, two_step_rx):
            receiver.learn_format(wire.to_wire_metadata())
        assert (
            fused_rx.decode(message, expect=name).values
            == two_step_rx.decode(message, expect=name).values
        )

    @RELAXED
    @given(case=evolution_case(), pair=arch_pairs)
    def test_defaults_are_fresh_per_decode(self, case, pair):
        wire_schema, target_schema, name, record = case
        sender, wire = register(wire_schema, name, pair[0])
        receiver, _ = register(target_schema, name, pair[1])
        receiver.learn_format(wire.to_wire_metadata())
        message = sender.encode(wire, record)
        first = receiver.decode(message, expect=name).values
        snapshot = copy.deepcopy(first)
        for value in first.values():
            if isinstance(value, list):
                value.append("tampered")
            elif isinstance(value, dict):
                value["tampered"] = True
        second = receiver.decode(message, expect=name).values
        assert second == snapshot

    @RELAXED
    @given(case=evolution_case(), arch=st.sampled_from(ARCHES))
    def test_projection_source_always_compiles(self, case, arch):
        wire_schema, target_schema, name, record = case
        _, wire = register(wire_schema, name, arch)
        _, target = register(target_schema, name, arch)
        source = generate_projection_source(wire, target)
        compile(source, "<projection>", "exec")


class TestCompatibilityConsistency:
    @RELAXED
    @given(case=evolution_case(), pair=arch_pairs)
    def test_no_projection_needed_means_identity_projection(self, case, pair):
        wire_schema, target_schema, name, record = case
        sender, wire = register(wire_schema, name, pair[0])
        _, target = register(target_schema, name, pair[1])
        if compare_formats(wire, target) is Compatibility.PROJECTION:
            return
        decoded = IOContext(pair[1])
        decoded.learn_format(wire.to_wire_metadata())
        wire_shaped = decoded.decode(sender.encode(wire, record)).values
        assert make_interpreted_projection(wire, target)(wire_shaped) == wire_shaped

    @RELAXED
    @given(case=evolution_case(), arch=st.sampled_from(ARCHES))
    def test_self_comparison_is_identity(self, case, arch):
        wire_schema, _, name, record = case
        _, wire = register(wire_schema, name, arch)
        assert compare_formats(wire, wire) is Compatibility.IDENTITY

    @RELAXED
    @given(case=evolution_case(), pair=arch_pairs)
    def test_relation_is_architecture_symmetric(self, case, pair):
        """PROJECTION-ness depends on field sets, not on direction of
        the architecture change."""
        wire_schema, target_schema, name, record = case
        _, a = register(wire_schema, name, pair[0])
        _, b = register(wire_schema, name, pair[1])
        relation_ab = compare_formats(a, b)
        relation_ba = compare_formats(b, a)
        assert (relation_ab is Compatibility.PROJECTION) == (
            relation_ba is Compatibility.PROJECTION
        )
