"""Metrics invariants under arbitrary inputs and real concurrency.

Satellites of the observability tentpole: for any observation sequence a
histogram's cumulative bucket counts are monotone, bounded by the total
count, and its sum matches the observations; and per-thread sharding
never loses a counter increment no matter how writers interleave —
whether the writers are OS threads or asyncio tasks spread over
threads.
"""

import asyncio
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Registry

RELAXED = settings(max_examples=150, deadline=None)

#: Observation values spanning the interesting range around any bound
#: set, including negatives (below every bucket) and huge overflows.
observations = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6,
        allow_nan=False, allow_infinity=False,
    ),
    max_size=200,
)

bucket_bounds = st.lists(
    st.floats(min_value=1e-6, max_value=1e3,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=12,
)


class TestHistogramInvariants:
    @RELAXED
    @given(values=observations, bounds=bucket_bounds)
    def test_buckets_monotone_and_consistent(self, values, bounds):
        histogram = Registry().histogram(
            "h", buckets=tuple(bounds)
        ).labels()
        for value in values:
            histogram.observe(value)
        snap = histogram.snapshot()

        assert snap.count == len(values)
        assert snap.sum == sum(values)

        previous = 0
        for bound, cumulative in snap.buckets:
            assert cumulative >= previous, "cumulative counts must be monotone"
            previous = cumulative
        assert previous <= snap.count, "+Inf bucket may not shrink the total"

        # Every bucket's cumulative count equals the number of
        # observations at or below its bound (le semantics).
        for bound, cumulative in snap.buckets:
            assert cumulative == sum(1 for v in values if v <= bound)

    @RELAXED
    @given(values=observations)
    def test_default_buckets_preserve_count_and_sum(self, values):
        histogram = Registry().histogram("h").labels()
        for value in values:
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap.count == len(values)
        assert snap.sum == sum(values)


class TestCounterConcurrency:
    @settings(max_examples=10, deadline=None)
    @given(
        writers=st.integers(min_value=2, max_value=8),
        per_writer=st.integers(min_value=1, max_value=2_000),
    )
    def test_threaded_increments_never_lost(self, writers, per_writer):
        counter = Registry().counter("c").labels()
        barrier = threading.Barrier(writers)

        def hammer():
            barrier.wait()
            for _ in range(per_writer):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(writers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == writers * per_writer

    @settings(max_examples=10, deadline=None)
    @given(
        tasks=st.integers(min_value=2, max_value=16),
        per_task=st.integers(min_value=1, max_value=500),
    )
    def test_async_task_increments_never_lost(self, tasks, per_task):
        counter = Registry().counter("c").labels()

        async def hammer():
            for index in range(per_task):
                counter.inc()
                if index % 50 == 0:
                    await asyncio.sleep(0)  # force interleaving

        async def scenario():
            await asyncio.gather(*(hammer() for _ in range(tasks)))

        asyncio.run(scenario())
        assert counter.value() == tasks * per_task

    def test_mixed_amounts_sum_exactly(self):
        counter = Registry().counter("c").labels()
        amounts = [1, 2.5, 0.25, 100]

        def hammer(amount):
            for _ in range(1_000):
                counter.inc(amount)

        threads = [
            threading.Thread(target=hammer, args=(amount,))
            for amount in amounts
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 1_000 * sum(amounts)
