"""Cross-validation: our XML parser against the stdlib as an oracle.

``xml.etree.ElementTree`` (expat underneath — the parser the original
xml2wire actually used) serves as the reference implementation: for any
document our writer can produce, both parsers must extract the same
structure, attributes and text.  The oracle is a *test* dependency only;
the library itself never imports it.
"""

import xml.etree.ElementTree as StdlibET

from hypothesis import given, settings

from repro.xmlparse import parse_document, write_document

from tests.property.test_xml_properties import elements

QUICK = settings(max_examples=100, deadline=None)


def our_shape(element):
    return (
        element.tag,
        tuple(sorted(element.attributes.items())),
        element.text if not element.children else "",
        tuple(our_shape(child) for child in element.children),
    )


def stdlib_shape(element):
    return (
        element.tag,
        tuple(sorted(element.attrib.items())),
        (element.text or "") if len(element) == 0 else "",
        tuple(stdlib_shape(child) for child in element),
    )


class TestAgainstStdlib:
    @QUICK
    @given(root=elements())
    def test_both_parsers_agree_on_generated_documents(self, root):
        document = write_document(root)
        ours = parse_document(document)
        theirs = StdlibET.fromstring(document)
        assert our_shape(ours) == stdlib_shape(theirs)

    @QUICK
    @given(root=elements())
    def test_stdlib_accepts_our_output(self, root):
        """Well-formedness: everything we emit, expat parses."""
        StdlibET.fromstring(write_document(root))

    def test_agreement_on_paper_schema_documents(self):
        from tests.schema.conftest import FIGURE_6, FIGURE_9, FIGURE_12

        for source in (FIGURE_6, FIGURE_9, FIGURE_12):
            ours = parse_document(source)
            theirs = StdlibET.fromstring(source)
            # Stdlib resolves namespaces into {uri}local tags; compare
            # structure counts and attribute payloads instead.
            our_elements = list(ours.iter())
            stdlib_elements = list(theirs.iter())
            assert len(our_elements) == len(stdlib_elements)
            for mine, std in zip(our_elements, stdlib_elements):
                std_attrs = {
                    k.split("}")[-1]: v for k, v in std.attrib.items()
                }
                our_attrs = {
                    k.split(":")[-1]: v
                    for k, v in mine.attributes.items()
                    if not k.startswith("xmlns")
                }
                assert our_attrs == std_attrs

    def test_agreement_on_entity_heavy_content(self):
        source = '<a x="&lt;&amp;&quot;&#65;">text &amp; &#x2603; more</a>'
        ours = parse_document(source)
        theirs = StdlibET.fromstring(source)
        assert ours.text == theirs.text
        assert ours.get("x") == theirs.get("x")
