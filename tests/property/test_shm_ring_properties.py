"""Property-based invariants for the shared-memory SPSC ring.

For any sequence of payloads and any interleaving of copying and
borrowing pops:

- the consumer sees exactly the produced payloads, in order, byte for
  byte (frames never split, merge, or alias each other across laps);
- cursor invariants hold at every step: ``tail <= head`` and
  ``head - tail <= capacity``;
- a borrowed view is stable until the next pop, and revocation makes
  stale access raise instead of silently reading recycled bytes.
"""

from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.mp.ring import RingBuffer

RELAXED = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

CAPACITY = 4096

payloads = st.lists(
    st.binary(min_size=0, max_size=CAPACITY // 2 - 8),
    min_size=1,
    max_size=30,
)


@contextmanager
def fresh_ring():
    """A producer/consumer mapping pair, rebuilt for every example."""
    producer = RingBuffer.create(CAPACITY)
    consumer = RingBuffer.attach(producer.name)
    try:
        yield producer, consumer
    finally:
        consumer.detach()
        producer.detach()
        producer.unlink()


def check_cursors(end):
    head, tail = end._head(), end._tail()
    assert tail <= head
    assert head - tail <= CAPACITY


class TestFIFOProperty:
    @RELAXED
    @given(messages=payloads)
    def test_pop_returns_pushed_bytes_in_order(self, messages):
        with fresh_ring() as (producer, consumer):
            for message in messages:
                producer.push((message,), timeout=5.0)
                assert consumer.pop(timeout=5.0) == message
                check_cursors(producer)

    @RELAXED
    @given(messages=payloads, burst=st.integers(min_value=1, max_value=4))
    def test_bursts_drain_in_order(self, messages, burst):
        with fresh_ring() as (producer, consumer):
            pending = []
            for message in messages:
                producer.push((message,), timeout=5.0)
                pending.append(message)
                if len(pending) >= burst:
                    for expected in pending:
                        assert consumer.pop(timeout=5.0) == expected
                    pending.clear()
                check_cursors(consumer)
            for expected in pending:
                assert consumer.pop(timeout=5.0) == expected
            assert consumer.depth() == 0

    @RELAXED
    @given(
        messages=payloads,
        splits=st.lists(
            st.integers(min_value=0, max_value=8), min_size=1, max_size=30
        ),
    )
    def test_multipart_push_equals_joined_payload(self, messages, splits):
        with fresh_ring() as (producer, consumer):
            for index, message in enumerate(messages):
                cut = min(splits[index % len(splits)], len(message))
                producer.push((message[:cut], message[cut:]), timeout=5.0)
                assert consumer.pop(timeout=5.0) == message


class TestBorrowProperty:
    @RELAXED
    @given(
        messages=payloads,
        borrow_mask=st.lists(st.booleans(), min_size=1, max_size=30),
    )
    def test_mixed_copy_and_borrow_pops_stay_fifo(self, messages, borrow_mask):
        with fresh_ring() as (producer, consumer):
            views = []
            for index, message in enumerate(messages):
                producer.push((message,), timeout=5.0)
                if borrow_mask[index % len(borrow_mask)]:
                    view = consumer.pop(timeout=5.0, copy=False)
                    assert bytes(view) == message
                    views.append(view)
                else:
                    assert consumer.pop(timeout=5.0) == message
                check_cursors(consumer)
            consumer.release_borrow()
            assert consumer.depth() == 0
            for view in views:  # drop the loans before the ring detaches
                view.release()

    @RELAXED
    @given(
        first=st.binary(min_size=1, max_size=512),
        second=st.binary(max_size=512),
    )
    def test_borrowed_view_stable_until_next_pop(self, first, second):
        with fresh_ring() as (producer, consumer):
            producer.push((first,), timeout=5.0)
            view = consumer.pop(timeout=5.0, copy=False)
            snapshot = bytes(view)
            producer.push((second,), timeout=5.0)
            # The producer cannot clobber the loan even while writing more.
            assert bytes(view) == snapshot == first
            assert consumer.pop(timeout=5.0) == second
            view.release()  # drop the loan before the ring detaches

    @RELAXED
    @given(message=st.binary(min_size=1, max_size=512))
    def test_invalidated_borrow_always_raises(self, message):
        with fresh_ring() as (producer, consumer):
            producer.push((message,), timeout=5.0)
            view = consumer.pop(timeout=5.0, copy=False)
            consumer.invalidate_borrow()
            with pytest.raises(ValueError):
                bytes(view)
            assert consumer.depth() == 0
