"""Unit tests for the pbdump CLI and the xml2wire --c-header flag."""

import json

import pytest

from repro.arch import SPARC_32
from repro.pbio import IOContext, IOField
from repro.pbio.iofile import dump_records
from repro.tools import pbdump as pbdump_tool
from repro.tools import xml2wire as xml2wire_tool

from tests.schema.conftest import FIGURE_9


@pytest.fixture
def archive(tmp_path):
    path = tmp_path / "ticks.pbio"
    context = IOContext(SPARC_32)
    context.register_format(
        "tick", [IOField("v", "integer", 4, 0), IOField("label", "string", 4, 4)]
    )
    dump_records(
        path,
        context,
        "tick",
        [{"v": i, "label": f"t{i}"} for i in range(4)],
    )
    return path


class TestPbdump:
    def test_text_output(self, archive, capsys):
        assert pbdump_tool.main([str(archive)]) == 0
        out = capsys.readouterr().out
        assert "# format 'tick'" in out
        assert "sparc_32" in out
        assert "[1] tick: v=0, label='t0'" in out
        assert "# 4 record(s)" in out

    def test_json_output(self, archive, capsys):
        assert pbdump_tool.main([str(archive), "--format", "json"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.startswith("{")]
        records = [json.loads(line) for line in lines]
        assert len(records) == 4
        assert records[2] == {"format": "tick", "v": 2, "label": "t2"}

    def test_limit(self, archive, capsys):
        pbdump_tool.main([str(archive), "--limit", "2"])
        assert "# 2 record(s)" in capsys.readouterr().out

    def test_metadata_only(self, archive, capsys):
        pbdump_tool.main([str(archive), "--metadata-only"])
        out = capsys.readouterr().out
        assert "# format 'tick'" in out
        assert "[1]" not in out

    def test_missing_file_is_error(self, tmp_path, capsys):
        assert pbdump_tool.main([str(tmp_path / "absent.pbio")]) == 1
        assert "error" in capsys.readouterr().err

    def test_non_pbio_file_is_error(self, tmp_path, capsys):
        path = tmp_path / "junk.pbio"
        path.write_bytes(b"garbage here")
        assert pbdump_tool.main([str(path)]) == 1


@pytest.fixture
def evolved_archive(tmp_path):
    """An archive carrying two versions of 'track' (the drift case)."""
    from repro.pbio.format import IOFormat
    from repro.pbio.iofile import IOFileWriter

    path = tmp_path / "tracks.pbio"
    context = IOContext(SPARC_32)
    v1 = context.register_format(
        "track",
        [IOField("flight", "string", 4, 0), IOField("alt", "integer", 4, 4)],
    )
    v2 = IOFormat(
        "track",
        [
            IOField("flight", "string", 4, 0),
            IOField("alt", "integer", 4, 4),
            IOField("speed", "double", 8, 8),
        ],
        SPARC_32,
        catalog={},
    )
    with IOFileWriter(path, context) as writer:
        writer.write(v1, {"flight": "A", "alt": 1})
        writer.write(v2, {"flight": "B", "alt": 2, "speed": 99.0})
    return path


class TestLineageFlag:
    def test_lineage_section_printed(self, evolved_archive, capsys):
        assert pbdump_tool.main([str(evolved_archive), "--lineage"]) == 0
        out = capsys.readouterr().out
        assert "# --- lineage ---" in out
        assert "lineage 'track': 2 version(s), latest v2" in out
        assert "ancestor id" in out and "(projection)" in out
        # The projection plan from the ancestor to the latest version.
        assert "default  speed" in out

    def test_single_version_has_no_ancestors(self, archive, capsys):
        assert pbdump_tool.main([str(archive), "--lineage"]) == 0
        out = capsys.readouterr().out
        assert "lineage 'tick': 1 version(s), latest v1" in out
        assert "ancestor id" not in out

    def test_no_flag_no_section(self, archive, capsys):
        pbdump_tool.main([str(archive)])
        assert "lineage" not in capsys.readouterr().out


class TestCHeaderFlag:
    def test_c_header_written(self, tmp_path, capsys):
        schema_path = tmp_path / "s.xsd"
        schema_path.write_text(FIGURE_9, encoding="utf-8")
        out_path = tmp_path / "asdoff.h"
        code = xml2wire_tool.main(
            [str(schema_path), "--arch", "sparc_32", "--c-header", str(out_path)]
        )
        assert code == 0
        header = out_path.read_text(encoding="utf-8")
        assert "typedef struct ASDOffEvent_s" in header
        assert "IOField ASDOffEventFields[]" in header

    def test_c_header_to_stdout(self, tmp_path, capsys):
        schema_path = tmp_path / "s.xsd"
        schema_path.write_text(FIGURE_9, encoding="utf-8")
        xml2wire_tool.main([str(schema_path), "--c-header", "-"])
        assert "unsigned long off[5];" in capsys.readouterr().out
