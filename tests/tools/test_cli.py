"""Unit tests for the command-line tools."""

import pytest

from repro.metaserver import MetadataServer
from repro.tools import metaserve as metaserve_tool
from repro.tools import validate as validate_tool
from repro.tools import xml2wire as xml2wire_tool

from tests.schema.conftest import FIGURE_9, FIGURE_12


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "asdoff.xsd"
    path.write_text(FIGURE_9, encoding="utf-8")
    return path


class TestXml2WireTool:
    def test_prints_pbio_metadata(self, schema_file, capsys):
        assert xml2wire_tool.main([str(schema_file), "--arch", "sparc_32"]) == 0
        out = capsys.readouterr().out
        assert "IOField ASDOffEventFields[]" in out
        assert '{ "eta", "unsigned integer[eta_count]", 4, 44 },' in out
        assert "52 bytes on sparc_32" in out

    def test_arch_changes_output(self, schema_file, capsys):
        xml2wire_tool.main([str(schema_file), "--arch", "x86_64"])
        out = capsys.readouterr().out
        assert "96 bytes on x86_64" in out or "bytes on x86_64" in out
        assert '{ "cntrID", "string", 8, 0 },' in out

    def test_nested_schema_prints_all_formats(self, tmp_path, capsys):
        path = tmp_path / "cd.xsd"
        path.write_text(FIGURE_12, encoding="utf-8")
        xml2wire_tool.main([str(path), "--arch", "sparc_32"])
        out = capsys.readouterr().out
        assert "IOField ASDOffEventFields[]" in out
        assert "IOField threeASDOffsFields[]" in out
        assert '{ "one", "ASDOffEvent", 52, 0 },' in out

    def test_ids_flag(self, schema_file, capsys):
        xml2wire_tool.main([str(schema_file), "--ids"])
        assert "format id:" in capsys.readouterr().out

    def test_stub_generation_to_file(self, schema_file, tmp_path, capsys):
        out_path = tmp_path / "stubs.py"
        assert xml2wire_tool.main([str(schema_file), "--stubs", str(out_path)]) == 0
        source = out_path.read_text(encoding="utf-8")
        assert "class ASDOffEvent:" in source
        compile(source, str(out_path), "exec")

    def test_stdin_input(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(FIGURE_9))
        assert xml2wire_tool.main(["-", "--arch", "sparc_32"]) == 0
        assert "ASDOffEvent" in capsys.readouterr().out

    def test_http_input(self, capsys):
        with MetadataServer() as server:
            url = server.publish_schema("/s.xsd", FIGURE_9)
            assert xml2wire_tool.main([url, "--arch", "sparc_32"]) == 0
        assert "ASDOffEvent" in capsys.readouterr().out

    def test_missing_file_is_error(self, tmp_path, capsys):
        assert xml2wire_tool.main([str(tmp_path / "nope.xsd")]) == 1
        assert "error" in capsys.readouterr().err

    def test_invalid_schema_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.xsd"
        path.write_text("<notaschema/>", encoding="utf-8")
        assert xml2wire_tool.main([str(path)]) == 1


class TestValidateTool:
    INSTANCE = (
        "<msg>"
        "<cntrID>ZTL</cntrID><arln>DL</arln><fltNum>1</fltNum>"
        "<equip>B7</equip><org>ATL</org><dest>LAX</dest>"
        "<off>1</off><off>2</off><off>3</off><off>4</off><off>5</off>"
        "<eta>9</eta>"
        "</msg>"
    )

    @pytest.fixture
    def instance_file(self, tmp_path):
        path = tmp_path / "msg.xml"
        path.write_text(self.INSTANCE, encoding="utf-8")
        return path

    def test_valid_instance(self, schema_file, instance_file, capsys):
        code = validate_tool.main(
            [str(schema_file), str(instance_file), "--type", "ASDOffEvent"]
        )
        assert code == 0
        assert "valid" in capsys.readouterr().out

    def test_invalid_instance(self, schema_file, tmp_path, capsys):
        path = tmp_path / "bad.xml"
        path.write_text("<msg><cntrID>ZTL</cntrID></msg>", encoding="utf-8")
        code = validate_tool.main(
            [str(schema_file), str(path), "--type", "ASDOffEvent"]
        )
        assert code == 1
        assert "invalid" in capsys.readouterr().out

    def test_classify(self, schema_file, instance_file, capsys):
        code = validate_tool.main(
            [str(schema_file), str(instance_file), "--classify"]
        )
        assert code == 0
        assert "best fit: ASDOffEvent" in capsys.readouterr().out

    def test_unknown_type_is_usage_error(self, schema_file, instance_file, capsys):
        code = validate_tool.main(
            [str(schema_file), str(instance_file), "--type", "Nope"]
        )
        assert code == 2


class TestMetaserveHelpers:
    def test_publish_directory(self, tmp_path):
        (tmp_path / "a.xsd").write_text(FIGURE_9, encoding="utf-8")
        (tmp_path / "b.xsd").write_text(FIGURE_12, encoding="utf-8")
        (tmp_path / "ignored.txt").write_text("x", encoding="utf-8")
        server = MetadataServer()
        urls = metaserve_tool.publish_directory(server, tmp_path, check=True)
        assert len(urls) == 2
        assert urls[0].endswith("/schemas/a.xsd")

    def test_check_rejects_invalid_schema(self, tmp_path):
        (tmp_path / "bad.xsd").write_text("<notaschema/>", encoding="utf-8")
        server = MetadataServer()
        with pytest.raises(Exception):
            metaserve_tool.publish_directory(server, tmp_path, check=True)

    def test_no_check_publishes_anything(self, tmp_path):
        (tmp_path / "bad.xsd").write_text("<notaschema/>", encoding="utf-8")
        server = MetadataServer()
        urls = metaserve_tool.publish_directory(server, tmp_path, check=False)
        assert len(urls) == 1

    def test_main_rejects_missing_directory(self, tmp_path, capsys):
        assert metaserve_tool.main([str(tmp_path / "absent")]) == 1


class TestMetaserveLineage:
    def make_archives(self, directory):
        from repro.arch import SPARC_32, X86_64
        from repro.pbio import IOContext, IOField
        from repro.pbio.iofile import dump_records

        def fields(arch, with_speed):
            out = [
                IOField("flight", "string", arch.pointer_size, 0),
                IOField("alt", "integer", 4, arch.pointer_size),
            ]
            if with_speed:
                out.append(IOField("speed", "double", 8, arch.pointer_size + 8))
            return out

        v1_context = IOContext(SPARC_32)
        v1_context.register_format("track", fields(SPARC_32, False))
        dump_records(
            directory / "a_v1.pbio", v1_context, "track",
            [{"flight": "A", "alt": 1}],
        )
        v2_context = IOContext(X86_64)
        v2_context.register_format("track", fields(X86_64, True))
        dump_records(
            directory / "b_v2.pbio", v2_context, "track",
            [{"flight": "B", "alt": 2, "speed": 9.0}],
        )

    def test_collect_lineage_chains_archive_formats(self, tmp_path):
        self.make_archives(tmp_path)
        lineage = metaserve_tool.collect_lineage(tmp_path)
        assert len(lineage) == 2
        latest = lineage.latest("track")
        assert lineage.describe(latest.format_id)["version"] == 2
        assert len(lineage.ancestry(latest.format_id)) == 2

    def test_lineage_documents_served_by_catalog(self, tmp_path):
        self.make_archives(tmp_path)
        lineage = metaserve_tool.collect_lineage(tmp_path)
        server = MetadataServer()
        server.catalog.attach_lineage(lineage)
        from repro.metaserver.http import HTTPRequest

        latest = lineage.latest("track")
        response = server.catalog.lookup(
            HTTPRequest("GET", f"/lineage/{latest.format_id.hex()}")
        )
        assert response.status == 200

    def test_parser_accepts_lineage_flag(self):
        args = metaserve_tool.build_parser().parse_args(["./schemas", "--lineage"])
        assert args.lineage is True
        args = metaserve_tool.build_parser().parse_args(["./schemas"])
        assert args.lineage is False

    def test_empty_directory_empty_lineage(self, tmp_path):
        assert len(metaserve_tool.collect_lineage(tmp_path)) == 0


class TestMetaservePoolFlags:
    def test_parser_accepts_workers_and_status(self):
        args = metaserve_tool.build_parser().parse_args(
            ["./schemas", "--workers", "4"]
        )
        assert args.workers == 4
        assert args.status is False
        args = metaserve_tool.build_parser().parse_args(
            ["--status", "--port", "8800"]
        )
        assert args.status is True
        assert args.directory is None

    def test_workers_defaults_to_single_process(self):
        args = metaserve_tool.build_parser().parse_args(["./schemas"])
        assert args.workers == 1

    def test_status_requires_port(self, capsys):
        assert metaserve_tool.main(["--status"]) == 1
        assert "--port" in capsys.readouterr().err

    def test_status_reports_unreachable_pool(self, capsys):
        # A port nothing listens on: the error path, not a hang.
        assert metaserve_tool.main(["--status", "--port", "1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_main_rejects_no_directory_without_status(self, capsys):
        assert metaserve_tool.main([]) == 1
        assert "directory is required" in capsys.readouterr().err

    def test_workers_and_cluster_are_exclusive(self, tmp_path, capsys):
        (tmp_path / "a.xsd").write_text(FIGURE_9, encoding="utf-8")
        code = metaserve_tool.main(
            [str(tmp_path), "--workers", "2", "--cluster", "2x1"]
        )
        assert code == 1
        assert "exclusive" in capsys.readouterr().err
