"""Trace piggyback on framed messages: inject/extract invariants."""

import struct

from repro.obs import (
    TRACE_BLOCK_SIZE,
    TRACE_FLAG,
    TraceContext,
    extract,
    get_tracer,
    inject,
    set_wire_tracing,
)
from repro.pbio.context import HEADER, HEADER_SIZE, KIND_DATA, KIND_FORMAT

CTX = TraceContext(trace_id=0x1122334455667788, span_id=0x99AABBCCDDEEFF00)


def data_message(body=b"payload"):
    return HEADER.pack(KIND_DATA, 1, 0, len(body), b"\x01" * 8) + body


class TestInject:
    def test_appends_block_and_sets_flag(self):
        message = data_message()
        tagged = inject(message, CTX)
        assert len(tagged) == len(message) + TRACE_BLOCK_SIZE
        _, _, reserved, length, _ = HEADER.unpack_from(tagged, 0)
        assert reserved & TRACE_FLAG
        assert length == len(message) - HEADER_SIZE  # body length unchanged
        trace_id, span_id = struct.unpack(">QQ", tagged[-TRACE_BLOCK_SIZE:])
        assert (trace_id, span_id) == (CTX.trace_id, CTX.span_id)

    def test_explicit_context_ignores_feature_flag(self, fresh_registry):
        assert inject(data_message(), CTX) != data_message()

    def test_without_flag_or_span_is_identity(self, fresh_registry):
        message = data_message()
        assert inject(message) is message

    def test_flag_on_but_no_active_span_is_identity(self, fresh_registry):
        set_wire_tracing(True)
        message = data_message()
        assert inject(message) is message

    def test_flag_on_with_active_span_injects(self, fresh_registry):
        set_wire_tracing(True)
        with get_tracer().start_span("op") as span:
            tagged = inject(data_message())
        _, context = extract(tagged)
        assert context == span.context()

    def test_non_data_kinds_untouched(self):
        meta = HEADER.pack(KIND_FORMAT, 1, 0, 4, b"\x00" * 8) + b"meta"
        assert inject(meta, CTX) is meta

    def test_short_message_untouched(self):
        assert inject(b"tiny", CTX) == b"tiny"

    def test_already_flagged_message_not_double_tagged(self):
        tagged = inject(data_message(), CTX)
        assert inject(tagged, TraceContext(1, 2)) is tagged


class TestExtract:
    def test_round_trip(self):
        message = data_message()
        recovered, context = extract(inject(message, CTX))
        assert recovered == message
        assert context == CTX

    def test_unflagged_message_passes_through(self):
        message = data_message()
        recovered, context = extract(message)
        assert recovered is message
        assert context is None

    def test_extraction_independent_of_feature_flag(self, fresh_registry):
        tagged = inject(data_message(), CTX)
        set_wire_tracing(False)
        _, context = extract(tagged)
        assert context == CTX

    def test_malformed_flagged_message_tolerated(self):
        # Flag bit set but no room for a trace block: pass through.
        short = HEADER.pack(KIND_DATA, 1, TRACE_FLAG, 2, b"\x01" * 8) + b"xy"
        recovered, context = extract(short)
        assert recovered is short
        assert context is None

    def test_short_message_tolerated(self):
        recovered, context = extract(b"x")
        assert recovered == b"x"
        assert context is None
