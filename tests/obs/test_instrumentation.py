"""Hot-path instrumentation: the right series move, and only when enabled."""

import threading

from repro import IOContext, SPARC_32
from repro.events import EventBackbone
from repro.obs import TraceContext, inject
from repro.transport import RecordConnection, connect, listen, make_pipe

from tests.golden import vectors


def counter_total(registry, name):
    """Sum of every series of a counter family (0 if never created)."""
    series = registry.snapshot().get(name, {})
    return sum(series.values())


class TestPbioInstrumentation:
    def test_encode_and_decode_counted_per_format(self, fresh_registry):
        context, fmt, record = vectors.build("asdoff_a")
        for _ in range(3):
            message = context.encode(fmt, record)
        context.decode(message)
        snap = fresh_registry.snapshot()
        key = (("format", fmt.name),)
        assert snap["pbio_encode_total"][key] == 3
        assert snap["pbio_decode_total"][key] == 1

    def test_codegen_cache_events(self, fresh_registry):
        context, fmt, record = vectors.build("asdoff_a")
        message = context.encode(fmt, record)
        context.decode(message)  # first decode builds the converter
        context.decode(message)  # second hits the cache
        snap = fresh_registry.snapshot()["pbio_codegen_total"]
        # Misses (builds) are registry events; hits stay a plain counter
        # on the cache so the per-decode hot path never touches metrics.
        assert snap[(("kind", "converter"), ("event", "miss"))] == 1
        assert (("kind", "converter"), ("event", "hit")) not in snap
        assert context.converter_cache_hits == 1

    def test_disabled_registry_freezes_counters(self, fresh_registry):
        context, fmt, record = vectors.build("asdoff_a")
        context.encode(fmt, record)
        fresh_registry.disable()
        context.encode(fmt, record)
        fresh_registry.enable()
        assert counter_total(fresh_registry, "pbio_encode_total") == 1

    def test_duration_sampling_keeps_counter_exact(self, fresh_registry):
        context, fmt, record = vectors.build("asdoff_a")
        for _ in range(40):
            context.encode(fmt, record)
        snap = fresh_registry.snapshot()
        key = (("format", fmt.name),)
        assert snap["pbio_encode_total"][key] == 40
        # Durations are sampled 1-in-16: some but not all encodes timed.
        timed = snap["pbio_encode_seconds"][key].count
        assert 0 < timed < 40


class TestTransportInstrumentation:
    def test_tcp_send_recv_frames_and_bytes(self, fresh_registry):
        listener = listen()
        result = {}

        def serve():
            server = listener.accept(timeout=5)
            result["got"] = server.recv(timeout=5)
            server.close()

        thread = threading.Thread(target=serve)
        thread.start()
        client = connect(*listener.address)
        client.send(b"x" * 100)
        thread.join()
        client.close()
        listener.close()
        assert result["got"] == b"x" * 100
        snap = fresh_registry.snapshot()
        frames = snap["transport_frames_total"]
        assert frames[(("plane", "threaded"), ("direction", "send"))] == 1
        assert frames[(("plane", "threaded"), ("direction", "recv"))] == 1
        sent = snap["transport_bytes_total"][
            (("plane", "threaded"), ("direction", "send"))
        ]
        assert sent == 100

    def test_record_connection_surfaces_peer_trace(self, fresh_registry):
        context, fmt, record = vectors.build("asdoff_a")
        left_chan, right_chan = make_pipe()
        left = RecordConnection(context, left_chan)
        receiver_context, _, _ = vectors.build("asdoff_a")
        right = RecordConnection(receiver_context, right_chan)
        peer = TraceContext(trace_id=11, span_id=22)
        left.channel.send(inject(context.encode(fmt, record), peer))
        decoded = right.recv(timeout=5)
        assert decoded["fltNum"] == record["fltNum"]
        assert right.last_trace == peer


class TestEventsInstrumentation:
    def test_fanout_counters_and_queue_depth(self, fresh_registry):
        backbone = EventBackbone()
        context, fmt, record = vectors.build("asdoff_a")
        publisher = backbone.publisher("flights.off", context)
        subscriber_context = IOContext(SPARC_32)
        subscription = backbone.subscribe("flights.*", subscriber_context)
        publisher.publish(fmt, record)
        snap = fresh_registry.snapshot()
        routed = snap["events_routed_total"]
        assert routed[(("stream", "flights.off"), ("kind", "metadata"))] >= 1
        assert routed[(("stream", "flights.off"), ("kind", "data"))] == 1
        # Queue depth was gauged after fan-out, before the subscriber drained.
        assert snap["events_queue_depth"][(("stream", "flights.off"),)] >= 1
        event = subscription.next(timeout=5)
        assert event["fltNum"] == record["fltNum"]
        subscription.cancel()
