"""Spans, context propagation, and the wire-tracing feature flag."""

import asyncio
import threading

from repro.obs import (
    TraceContext,
    Tracer,
    current_span,
    current_trace_context,
    set_wire_tracing,
    wire_tracing_enabled,
)


class TestSpanLifecycle:
    def test_root_span_gets_fresh_trace_id(self):
        tracer = Tracer(seed=7)
        with tracer.start_span("root") as span:
            assert span.trace_id != 0
            assert span.span_id != 0
            assert span.parent_id is None
            assert current_span() is span
        assert current_span() is None
        assert span.duration is not None and span.duration >= 0

    def test_child_inherits_trace_id(self):
        tracer = Tracer(seed=7)
        with tracer.start_span("parent") as parent:
            with tracer.start_span("child") as child:
                assert child.trace_id == parent.trace_id
                assert child.parent_id == parent.span_id
                assert child.span_id != parent.span_id
            assert current_span() is parent

    def test_explicit_parent_context(self):
        tracer = Tracer(seed=7)
        remote = TraceContext(trace_id=42, span_id=99)
        span = tracer.start_span("server-side", parent=remote, activate=False)
        assert span.trace_id == 42
        assert span.parent_id == 99
        span.finish()

    def test_finish_is_idempotent(self):
        tracer = Tracer(seed=7)
        span = tracer.start_span("once", activate=False)
        span.finish()
        first_end = span.end
        span.finish()
        assert span.end == first_end
        assert len(tracer.drain_finished()) == 1

    def test_tags_and_context(self):
        tracer = Tracer(seed=7)
        span = tracer.start_span("tagged", activate=False).set_tag("plane", "async")
        assert span.tags == {"plane": "async"}
        assert span.context() == TraceContext(span.trace_id, span.span_id)
        span.finish()

    def test_seeded_tracer_is_reproducible(self):
        ids_a = [Tracer(seed=1204).start_span("x", activate=False).span_id
                 for _ in range(1)]
        ids_b = [Tracer(seed=1204).start_span("x", activate=False).span_id
                 for _ in range(1)]
        assert ids_a == ids_b

    def test_finished_ring_is_bounded(self):
        tracer = Tracer(max_finished=4, seed=7)
        for index in range(10):
            tracer.start_span(f"s{index}", activate=False).finish()
        drained = tracer.drain_finished()
        assert len(drained) == 4
        assert [span.name for span in drained] == ["s6", "s7", "s8", "s9"]


class TestContextIsolation:
    def test_threads_do_not_inherit_spans(self):
        tracer = Tracer(seed=7)
        seen = []
        with tracer.start_span("main-thread"):
            thread = threading.Thread(target=lambda: seen.append(current_span()))
            thread.start()
            thread.join()
        assert seen == [None]

    def test_asyncio_tasks_inherit_then_isolate(self):
        tracer = Tracer(seed=7)

        async def child():
            inherited = current_trace_context()
            with tracer.start_span("child"):
                inner = current_span()
            return inherited, inner

        async def scenario():
            with tracer.start_span("parent") as parent:
                inherited, inner = await asyncio.create_task(child())
                # The task saw the parent at creation time…
                assert inherited == parent.context()
                # …but its own span never leaked back here.
                assert current_span() is parent
                assert inner.parent_id == parent.span_id

        asyncio.run(scenario())


class TestWireTracingFlag:
    def test_flag_round_trip(self, fresh_registry):
        assert not wire_tracing_enabled()
        set_wire_tracing(True)
        assert wire_tracing_enabled()
        set_wire_tracing(False)
        assert not wire_tracing_enabled()
