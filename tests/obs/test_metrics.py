"""Registry, counters, gauges, histograms: semantics and exposition."""

import threading

import pytest

from repro.errors import ReproError
from repro.obs import DEFAULT_BUCKETS, HistogramSnapshot, Registry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = Registry()
        frames = registry.counter("frames_total", "frames")
        assert frames.value() == 0
        frames.inc()
        frames.inc(4)
        assert frames.value() == 5

    def test_negative_increment_rejected(self):
        counter = Registry().counter("c").labels()
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_labeled_series_are_independent(self):
        registry = Registry()
        family = registry.counter("bytes_total", labels=("direction",))
        family.labels("send").inc(10)
        family.labels("recv").inc(3)
        assert family.labels("send").value() == 10
        assert family.labels("recv").value() == 3
        assert family.value() == 13

    def test_label_values_coerced_to_str(self):
        family = Registry().counter("c", labels=("code",))
        family.labels(200).inc()
        assert family.labels("200").value() == 1

    def test_wrong_label_arity_rejected(self):
        family = Registry().counter("c", labels=("a", "b"))
        with pytest.raises(ReproError):
            family.labels("only-one")

    def test_concurrent_increments_never_lost(self):
        counter = Registry().counter("c").labels()
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(10_000)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 80_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Registry().gauge("depth").labels()
        gauge.set(7)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value() == 5


class TestHistogram:
    def test_snapshot_buckets_are_cumulative(self):
        family = Registry().histogram("h", buckets=(0.1, 1.0, 10.0))
        h = family.labels()
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        snap = h.snapshot()
        assert isinstance(snap, HistogramSnapshot)
        assert snap.count == 5
        assert snap.sum == pytest.approx(56.05)
        assert snap.buckets == ((0.1, 1), (1.0, 3), (10.0, 4))

    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus buckets are le (inclusive upper bound).
        h = Registry().histogram("h", buckets=(1.0, 2.0)).labels()
        h.observe(1.0)
        assert h.snapshot().buckets == ((1.0, 1), (2.0, 1))

    def test_bounds_sorted_and_deduplicated(self):
        family = Registry().histogram("h", buckets=(5.0, 1.0, 5.0))
        assert family.buckets == (1.0, 5.0)

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ReproError):
            Registry().histogram("h", buckets=())

    def test_default_buckets_cover_micro_to_seconds(self):
        assert DEFAULT_BUCKETS[0] <= 1e-5
        assert DEFAULT_BUCKETS[-1] >= 1.0


class TestRegistry:
    def test_family_creation_is_idempotent(self):
        registry = Registry()
        a = registry.counter("hits_total", "hits")
        b = registry.counter("hits_total", "different help ignored")
        assert a is b

    def test_kind_clash_rejected(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(ReproError):
            registry.gauge("x")

    def test_label_clash_rejected(self):
        registry = Registry()
        registry.counter("x", labels=("a",))
        with pytest.raises(ReproError):
            registry.counter("x", labels=("b",))

    def test_enable_disable_flag(self):
        registry = Registry(enabled=False)
        assert not registry.enabled
        registry.enable()
        assert registry.enabled
        registry.disable()
        assert not registry.enabled

    def test_snapshot_shape(self):
        registry = Registry()
        registry.counter("c", labels=("k",)).labels("v").inc(2)
        registry.gauge("g").set(1.5)
        snap = registry.snapshot()
        assert snap["c"][(("k", "v"),)] == 2
        assert snap["g"][()] == 1.5


class TestRender:
    def test_counter_and_gauge_lines(self):
        registry = Registry()
        registry.counter("frames_total", "frames seen",
                         labels=("plane",)).labels("async").inc(3)
        registry.gauge("depth", "queue depth").set(2.5)
        text = registry.render()
        assert "# HELP frames_total frames seen" in text
        assert "# TYPE frames_total counter" in text
        assert 'frames_total{plane="async"} 3' in text
        assert "depth 2.5" in text

    def test_histogram_exposition(self):
        registry = Registry()
        h = registry.histogram("lat", "latency", buckets=(0.5, 1.0))
        h.observe(0.25)
        h.observe(2.0)
        text = registry.render()
        assert 'lat_bucket{le="0.5"} 1' in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_sum 2.25" in text
        assert "lat_count 2" in text

    def test_label_values_escaped(self):
        registry = Registry()
        registry.counter("c", labels=("path",)).labels('a"b\\c\nd').inc()
        assert 'path="a\\"b\\\\c\\nd"' in registry.render()

    def test_empty_registry_renders_empty(self):
        assert Registry().render() == ""
