"""API hygiene: documentation and export discipline, enforced.

A library a downstream user adopts must be documented at every public
surface.  These tests walk the installed package and assert it:

- every module has a docstring;
- every public class, function and method has a docstring;
- every name in a package's ``__all__`` actually resolves;
- the exception hierarchy stays rooted at :class:`ReproError`.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro
from repro import errors


def walk_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = walk_modules()


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.ismodule(member):
            continue
        defined_here = getattr(member, "__module__", None) == module.__name__
        if not defined_here:
            continue
        yield name, member


class TestDocstrings:
    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} lacks a module docstring"
        )

    @staticmethod
    def _documented(member) -> bool:
        return bool(member.__doc__ and member.__doc__.strip())

    @classmethod
    def _method_documented(cls, owner, method_name, method) -> bool:
        """A method counts as documented if it or any base's version is."""
        if cls._documented(method):
            return True
        for base in owner.__mro__[1:]:
            inherited = base.__dict__.get(method_name)
            if inherited is not None and cls._documented(inherited):
                return True
        return False

    @pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
    def test_public_callables_documented(self, module):
        undocumented = []
        for name, member in public_members(module):
            if inspect.isclass(member) or inspect.isfunction(member):
                if not self._documented(member):
                    undocumented.append(name)
                if inspect.isclass(member):
                    for method_name, method in vars(member).items():
                        if method_name.startswith("_"):
                            continue
                        if inspect.isfunction(method) and not self._method_documented(
                            member, method_name, method
                        ):
                            undocumented.append(f"{name}.{method_name}")
        assert not undocumented, (
            f"{module.__name__}: undocumented public API: {undocumented}"
        )


class TestExports:
    @pytest.mark.parametrize(
        "module",
        [m for m in MODULES if hasattr(m, "__all__")],
        ids=lambda m: m.__name__,
    )
    def test_all_names_resolve(self, module):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_top_level_exports_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestErrorHierarchy:
    def test_every_error_roots_at_repro_error(self):
        for name, member in vars(errors).items():
            if inspect.isclass(member) and issubclass(member, Exception):
                if member is not errors.ReproError:
                    assert issubclass(member, errors.ReproError), name

    def test_no_module_raises_bare_exception(self):
        """Grep-level check: library code never raises bare Exception."""
        import pathlib

        offenders = []
        for path in pathlib.Path("src").rglob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                stripped = line.strip()
                if stripped.startswith("raise Exception") or stripped.startswith(
                    "raise BaseException"
                ):
                    offenders.append(f"{path}:{lineno}")
        assert not offenders, offenders
