"""Fault injection against columnar batch frames.

A corrupted or truncated batch frame must surface as a typed
:class:`~repro.errors.DecodeError` carrying batch context (the format
name and the offending column), never as silent corruption or an
untyped crash — and the channel must stay usable for the next good
frame.  The seeded :class:`~repro.faults.FaultPlan` corruption stream
is shared across planes, so the same seed produces the same corrupted
bytes — and therefore the same error — through the sync and async
fault wrappers (the plane-parity contract of
``tests/faults/test_plane_parity.py``).
"""

import asyncio

import pytest

from repro.aio.faults import AsyncFaultyChannel
from repro.errors import DecodeError
from repro.faults import FaultPlan, FaultyChannel
from repro.faults.channel import corrupt_bytes
from repro.pbio import IOContext
from repro.core.xml2wire import XML2Wire
from repro.transport import make_pipe
from repro.transport.connection import RecordConnection
from repro.workloads import AirlineWorkload, ASDOFF_B_SCHEMA

#: Seeds whose first corruption-RNG draw lands in a known region of the
#: 8-record Structure B batch frame built below (found empirically,
#: pinned here; the derivation is deterministic per FaultPlan seed).
SEED_STRING_OFFSET = 0  # flips a string heap offset -> bounds error
SEED_DYNAMIC_HEAP = 11  # flips dynamic-array heap data -> row error
SEED_PRELUDE = 35  # flips the prelude heap offset -> layout error


def build_sender():
    context = IOContext()
    XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
    fmt = context.lookup_format("ASDOffEvent")
    return context, fmt


@pytest.fixture
def batch_setup():
    context, fmt = build_sender()
    records = AirlineWorkload(seed=5).batch_b(8)
    receiver = IOContext()
    receiver.learn_format(fmt.to_wire_metadata())
    return context, fmt, records, receiver


class TestCraftedCorruption:
    """Hand-corrupted frames pin the error taxonomy deterministically."""

    def test_truncated_payload_is_typed(self, batch_setup):
        context, fmt, records, receiver = batch_setup
        message = context.encode_batch(fmt, records)
        with pytest.raises(DecodeError) as excinfo:
            receiver.decode_batch(message[: len(message) - 10])
        assert "truncated" in str(excinfo.value)

    def test_truncation_inside_header_is_typed(self, batch_setup):
        context, fmt, records, receiver = batch_setup
        message = context.encode_batch(fmt, records)
        with pytest.raises(DecodeError):
            receiver.decode_batch(message[:8])

    def test_zero_record_count_rejected(self, batch_setup):
        context, fmt, records, receiver = batch_setup
        message = bytearray(context.encode_batch(fmt, records))
        message[16:20] = (0).to_bytes(4, "big")  # prelude count := 0
        with pytest.raises(DecodeError) as excinfo:
            receiver.decode_batch(bytes(message))
        assert "columnar batch" in str(excinfo.value)

    def test_impossible_record_count_rejected(self, batch_setup):
        context, fmt, records, receiver = batch_setup
        message = bytearray(context.encode_batch(fmt, records))
        message[16:20] = (2**31).to_bytes(4, "big")
        with pytest.raises(DecodeError) as excinfo:
            receiver.decode_batch(bytes(message))
        assert "columnar batch" in str(excinfo.value)

    def test_mismatched_heap_offset_rejected(self, batch_setup):
        context, fmt, records, receiver = batch_setup
        message = bytearray(context.encode_batch(fmt, records))
        message[20:24] = (7).to_bytes(4, "big")  # prelude heap_off
        with pytest.raises(DecodeError) as excinfo:
            receiver.decode_batch(bytes(message))
        assert "heap offset" in str(excinfo.value)


class TestFaultedChannel:
    """A seeded plan corrupts the batch frame in flight; recv surfaces a
    typed error with batch context and the connection stays usable."""

    @pytest.mark.parametrize(
        "seed,fragment",
        [
            (SEED_STRING_OFFSET, "corrupt column"),
            (SEED_DYNAMIC_HEAP, "corrupt column"),
            (SEED_PRELUDE, "heap offset"),
        ],
    )
    def test_corrupt_batch_surfaces_decode_error(self, seed, fragment):
        context, fmt = build_sender()
        records = AirlineWorkload(seed=5).batch_b(8)
        left, right = make_pipe()
        # Op 1 is the metadata push, op 2 the batch frame: corrupt
        # exactly the batch.
        plan = FaultPlan(seed).on(2, "corrupt")
        sender = RecordConnection(context, FaultyChannel(left, plan))
        receiver = RecordConnection(IOContext(), right)
        sender.send_batch(fmt, records)
        with pytest.raises(DecodeError) as excinfo:
            receiver.recv(timeout=2)
        text = str(excinfo.value)
        assert "columnar batch for format 'ASDOffEvent'" in text
        assert fragment in text
        # The channel survives: the next (unfaulted) batch delivers.
        sender.send_batch(fmt, records)
        got = [receiver.recv(timeout=2).values for _ in range(8)]
        assert got == records

    def test_same_seed_same_corruption_on_both_planes(self, arun):
        """The async fault wrapper flips the identical bit, so the same
        typed error surfaces on the async plane (plane parity)."""
        context, fmt = build_sender()
        records = AirlineWorkload(seed=5).batch_b(8)
        message = context.encode_batch(fmt, records)

        sync_corrupted = corrupt_bytes(
            message, FaultPlan(SEED_STRING_OFFSET).corruption_rng()
        )

        class _Loopback:
            def __init__(self):
                self.outbox = []
                self.closed = False

            async def send(self, payload):
                self.outbox.append(bytes(payload))

            async def recv(self, timeout=None):  # pragma: no cover
                raise AssertionError("send-only stub")

            async def flush(self):
                pass

            async def close(self):
                self.closed = True

        async def scenario():
            inner = _Loopback()
            channel = AsyncFaultyChannel(
                inner, FaultPlan(SEED_STRING_OFFSET).on(1, "corrupt")
            )
            await channel.send_batch([message])
            return inner.outbox[0]

        async_corrupted = arun(scenario())
        assert async_corrupted == sync_corrupted
        receiver = IOContext()
        receiver.learn_format(fmt.to_wire_metadata())
        for corrupted in (sync_corrupted, async_corrupted):
            with pytest.raises(DecodeError) as excinfo:
                receiver.decode_batch(corrupted)
            assert "columnar batch for format 'ASDOffEvent'" in str(excinfo.value)
