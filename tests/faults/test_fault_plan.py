"""Fault plans must be deterministic, inspectable, and validated."""

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan, ServerFaultPlan


class TestScheduling:
    def test_explicit_nth_operation(self):
        plan = FaultPlan().on(2, "reset").on(4, "drop")
        decisions = [plan.decide("send") for _ in range(5)]
        assert decisions == [None, "reset", None, "drop", None]

    def test_explicit_wins_over_probabilistic(self):
        plan = FaultPlan(seed=7, drop=1.0).on(1, "reset")
        assert plan.decide("send") == "reset"
        assert plan.decide("send") == "drop"

    def test_same_seed_same_sequence(self):
        first = FaultPlan(seed=42, reset=0.1, drop=0.3, corrupt=0.2)
        second = FaultPlan(seed=42, reset=0.1, drop=0.3, corrupt=0.2)
        a = [first.decide("send") for _ in range(200)]
        b = [second.decide("send") for _ in range(200)]
        assert a == b
        assert any(kind is not None for kind in a)

    def test_different_seed_different_sequence(self):
        plan1 = FaultPlan(seed=1, drop=0.5)
        plan2 = FaultPlan(seed=2, drop=0.5)
        a = [plan1.decide("send") for _ in range(100)]
        b = [plan2.decide("send") for _ in range(100)]
        assert a != b

    def test_zero_rates_never_fault(self):
        plan = FaultPlan(seed=3)
        assert all(plan.decide("recv") is None for _ in range(100))

    def test_ops_filter_skips_other_operations(self):
        plan = FaultPlan(ops=("recv",)).on(1, "timeout")
        assert plan.decide("send") is None  # not counted, not faulted
        assert plan.decide("recv") == "timeout"

    def test_reset_rewinds_to_identical_stream(self):
        plan = FaultPlan(seed=9, corrupt=0.4).on(3, "reset")
        first = [plan.decide("send") for _ in range(50)]
        plan.reset()
        second = [plan.decide("send") for _ in range(50)]
        assert first == second


class TestAccounting:
    def test_counts_and_events(self):
        plan = FaultPlan().on(1, "drop").on(3, "drop").on(4, "delay")
        for _ in range(5):
            plan.decide("send")
        assert plan.counts["drop"] == 2
        assert plan.counts["delay"] == 1
        assert plan.total_injected == 3
        assert plan.operations == 5
        assert [event.index for event in plan.injected] == [1, 3, 4]

    def test_server_plan_counts(self):
        plan = ServerFaultPlan(seed=5, error=0.5)
        decisions = [plan.decide() for _ in range(100)]
        errors = sum(1 for kind in decisions if kind == "error")
        assert plan.counts["error"] == errors
        assert 20 < errors < 80  # seeded, roughly half


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown fault kind"):
            FaultPlan().on(1, "meltdown")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ReproError, match="rate"):
            FaultPlan(drop=1.5)

    def test_zero_index_rejected(self):
        with pytest.raises(ReproError, match="1-based"):
            FaultPlan().on(0, "drop")

    def test_server_status_validated(self):
        with pytest.raises(ReproError, match="4xx/5xx"):
            ServerFaultPlan(error_status=200)
