"""Sync/async fault-wrapper parity: one plan, one decision stream.

A chaos schedule developed against :class:`FaultyChannel` must replay
fault-for-fault — and corrupt-bit-for-corrupt-bit — through
:class:`AsyncFaultyChannel`.  These tests drive the *same* scripted
operation sequence through both wrappers over behavior-identical
loopback stubs and assert the observable outcomes, the recorded
``plan.injected`` events, and the exact corrupted payload bytes all
match.  This pins the shared-seed contract of
:meth:`FaultPlan.corruption_rng` (the fix for the wrappers previously
deriving their corruption RNGs independently).
"""

import asyncio
from collections import deque

import pytest

from repro.aio.faults import AsyncFaultyChannel
from repro.faults import FaultPlan, FaultyChannel


class SyncLoopback:
    """Deterministic in-memory channel: scripted inbox, recorded outbox."""

    def __init__(self, inbox):
        self.inbox = deque(inbox)
        self.outbox = []
        self._closed = False

    def send(self, message):
        from repro.errors import ChannelClosedError

        if self._closed:
            raise ChannelClosedError("stub closed")
        self.outbox.append(message)

    def recv(self, timeout=None):
        from repro.errors import ChannelClosedError, TransportTimeoutError

        if self._closed:
            raise ChannelClosedError("stub closed")
        if not self.inbox:
            raise TransportTimeoutError("stub inbox empty")
        return self.inbox.popleft()

    def close(self):
        self._closed = True

    @property
    def closed(self):
        return self._closed


class AsyncLoopback:
    """Coroutine twin of :class:`SyncLoopback` — same visible behavior."""

    def __init__(self, inbox):
        self.inbox = deque(inbox)
        self.outbox = []
        self._closed = False

    async def send(self, message):
        from repro.errors import ChannelClosedError

        if self._closed:
            raise ChannelClosedError("stub closed")
        self.outbox.append(message)

    async def recv(self, timeout=None):
        from repro.errors import ChannelClosedError, TransportTimeoutError

        if self._closed:
            raise ChannelClosedError("stub closed")
        if not self.inbox:
            raise TransportTimeoutError("stub inbox empty")
        return self.inbox.popleft()

    async def flush(self):
        pass

    async def close(self):
        self._closed = True

    @property
    def closed(self):
        return self._closed


def script(ops=40):
    """Alternating sends (distinct payloads) and recvs."""
    steps = []
    for index in range(ops):
        if index % 2 == 0:
            steps.append(("send", bytes([index % 256]) * 24))
        else:
            steps.append(("recv", None))
    return steps


def inbox(messages=80):
    """Plenty of distinct inbound messages (drop faults consume extras)."""
    return [b"m%03d" % index + bytes(20) for index in range(messages)]


def drive_sync(plan, steps):
    inner = SyncLoopback(inbox())
    channel = FaultyChannel(inner, plan)
    outcomes = []
    for op, payload in steps:
        try:
            if op == "send":
                channel.send(payload)
                outcomes.append(("send", None))
            else:
                outcomes.append(("recv", channel.recv(timeout=0)))
        except Exception as exc:  # noqa: BLE001 — parity compares the type
            outcomes.append((op + "-error", type(exc).__name__))
    return outcomes, inner.outbox


def drive_async(plan, steps):
    async def scenario():
        inner = AsyncLoopback(inbox())
        channel = AsyncFaultyChannel(inner, plan)
        outcomes = []
        for op, payload in steps:
            try:
                if op == "send":
                    await channel.send(payload)
                    outcomes.append(("send", None))
                else:
                    outcomes.append(("recv", await channel.recv(timeout=0)))
            except Exception as exc:  # noqa: BLE001
                outcomes.append((op + "-error", type(exc).__name__))
        return outcomes, inner.outbox

    return asyncio.run(scenario())


@pytest.mark.parametrize("seed", [0, 7, 1204, 0xC0FFEE])
def test_shared_seed_replays_identically_on_both_planes(seed):
    make_plan = lambda: FaultPlan(  # noqa: E731 — two identical plans
        seed,
        reset=0.02, timeout=0.05, drop=0.1, corrupt=0.25, delay=0.05,
        delay_seconds=0.0,
    )
    steps = script()
    sync_plan, async_plan = make_plan(), make_plan()
    sync_outcomes, sync_outbox = drive_sync(sync_plan, steps)
    async_outcomes, async_outbox = drive_async(async_plan, steps)

    # Same decisions, at the same operations, of the same kinds…
    assert sync_plan.injected == async_plan.injected
    assert sync_plan.counts == async_plan.counts
    # …with the same visible effects, including corrupted recv payloads…
    assert sync_outcomes == async_outcomes
    # …and byte-identical corrupted sends on the wire.
    assert sync_outbox == async_outbox


def test_explicit_corrupt_schedule_flips_identical_bits():
    steps = [("send", b"\x00" * 64)] * 4
    sync_plan = FaultPlan(99).on(2, "corrupt").on(4, "corrupt")
    async_plan = FaultPlan(99).on(2, "corrupt").on(4, "corrupt")
    _, sync_outbox = drive_sync(sync_plan, steps)
    _, async_outbox = drive_async(async_plan, steps)
    assert sync_outbox == async_outbox
    # The corrupted messages really are corrupted (exactly one bit each).
    for message in (sync_outbox[1], sync_outbox[3]):
        flipped = [byte for byte in message if byte]
        assert len(flipped) == 1
        assert bin(flipped[0]).count("1") == 1


def test_corruption_rng_is_a_seed_derivation_not_the_seed():
    plan = FaultPlan(seed=5)
    derived = plan.corruption_rng()
    import random

    assert derived.getstate() != random.Random(5).getstate()
    # Stable across calls: every wrapper constructed from this plan sees
    # the same corruption stream.
    again = plan.corruption_rng()
    assert derived.getstate() == again.getstate()
