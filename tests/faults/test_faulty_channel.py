"""FaultyChannel must turn plan decisions into real failure modes."""

import pytest

from repro.errors import ChannelClosedError, TransportTimeoutError
from repro.faults import FaultPlan, FaultyChannel
from repro.transport import make_pipe


def faulty_pipe(plan):
    """An in-process pipe with faults injected on the left end."""
    left, right = make_pipe()
    return FaultyChannel(left, plan), right


class TestSendFaults:
    def test_clean_plan_passes_through(self):
        channel, peer = faulty_pipe(FaultPlan())
        channel.send(b"hello")
        assert peer.recv(timeout=1) == b"hello"
        assert channel.sent == 1

    def test_clean_path_passes_memoryview_through_uncoerced(self):
        sent_types = []

        class Recorder:
            closed = False

            def send(self, message):
                sent_types.append(type(message))

            def recv(self, timeout=None):  # pragma: no cover - unused
                raise AssertionError

            def close(self):  # pragma: no cover - unused
                pass

        channel = FaultyChannel(Recorder(), FaultPlan())
        view = memoryview(b"zero-copy message")
        channel.send(view)
        assert sent_types == [memoryview]  # no bytes() on the clean path

    def test_drop_loses_the_message_silently(self):
        channel, peer = faulty_pipe(FaultPlan(ops=("send",)).on(1, "drop"))
        channel.send(b"lost")
        channel.send(b"kept")
        assert peer.recv(timeout=1) == b"kept"
        assert channel.plan.counts["drop"] == 1

    def test_reset_closes_and_raises(self):
        channel, _ = faulty_pipe(FaultPlan(ops=("send",)).on(1, "reset"))
        with pytest.raises(ChannelClosedError, match="injected"):
            channel.send(b"x")
        assert channel.closed

    def test_timeout_raises_without_sending(self):
        channel, peer = faulty_pipe(FaultPlan(ops=("send",)).on(1, "timeout"))
        with pytest.raises(TransportTimeoutError):
            channel.send(b"x")
        channel.send(b"after")
        assert peer.recv(timeout=1) == b"after"

    def test_corrupt_flips_exactly_one_bit(self):
        channel, peer = faulty_pipe(FaultPlan(seed=4, ops=("send",)).on(1, "corrupt"))
        original = bytes(range(32))
        channel.send(original)
        received = peer.recv(timeout=1)
        assert received != original
        assert len(received) == len(original)
        diff = [i for i in range(32) if received[i] != original[i]]
        assert len(diff) == 1
        assert bin(received[diff[0]] ^ original[diff[0]]).count("1") == 1

    def test_corrupt_tolerates_memoryview_without_mutating_source(self):
        channel, peer = faulty_pipe(FaultPlan(seed=4, ops=("send",)).on(1, "corrupt"))
        backing = bytearray(range(32))
        channel.send(memoryview(backing))
        received = peer.recv(timeout=1)
        assert received != bytes(backing)
        # The corruption copy never touches the pooled source buffer.
        assert backing == bytearray(range(32))

    def test_corruption_is_seeded(self):
        def run(seed):
            channel, peer = faulty_pipe(
                FaultPlan(seed=seed, ops=("send",)).on(1, "corrupt")
            )
            channel.send(bytes(64))
            return peer.recv(timeout=1)

        assert run(11) == run(11)


class TestRecvFaults:
    def test_recv_timeout_injected(self):
        channel, peer = faulty_pipe(FaultPlan(ops=("recv",)).on(1, "timeout"))
        peer.send(b"waiting")
        with pytest.raises(TransportTimeoutError):
            channel.recv(timeout=1)
        assert channel.recv(timeout=1) == b"waiting"

    def test_recv_drop_discards_one_message(self):
        channel, peer = faulty_pipe(FaultPlan(ops=("recv",)).on(1, "drop"))
        peer.send(b"first")
        peer.send(b"second")
        assert channel.recv(timeout=1) == b"second"

    def test_recv_corrupt_mutates_payload(self):
        channel, peer = faulty_pipe(FaultPlan(seed=2, ops=("recv",)).on(1, "corrupt"))
        peer.send(bytes(16))
        received = channel.recv(timeout=1)
        assert received != bytes(16)
        assert len(received) == 16

    def test_recv_reset_closes(self):
        channel, peer = faulty_pipe(FaultPlan(ops=("recv",)).on(1, "reset"))
        peer.send(b"x")
        with pytest.raises(ChannelClosedError, match="injected"):
            channel.recv(timeout=1)


class TestDeterminism:
    def test_same_seed_same_fault_trace(self):
        def run():
            plan = FaultPlan(seed=99, drop=0.3, corrupt=0.2, ops=("send",))
            channel, peer = faulty_pipe(plan)
            for i in range(50):
                channel.send(bytes([i]) * 8)
            received = []
            while True:
                try:
                    received.append(peer.recv(timeout=0.05))
                except Exception:
                    break
            return received, [e.kind for e in plan.injected]

        first, first_trace = run()
        second, second_trace = run()
        assert first == second
        assert first_trace == second_trace
        assert len(first) < 50  # some messages really were dropped
