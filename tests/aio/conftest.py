"""Shared helpers for async-plane tests.

No pytest-asyncio dependency: each test drives its coroutine with the
``arun`` fixture (``asyncio.run`` plus a global deadline so a deadlock
fails the test instead of hanging the suite).
"""

import asyncio

import pytest


@pytest.fixture
def arun():
    def runner(coro, timeout=30.0):
        return asyncio.run(asyncio.wait_for(coro, timeout))

    return runner
