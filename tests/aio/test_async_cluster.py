"""AsyncClusterClient: concurrent quorum fan-out and failover on asyncio.

The async client shares the sync client's ShardRouter, so both planes
route every key identically — including against *threaded* servers
(cross-plane: the peer protocol is plane-agnostic HTTP).
"""

import pytest

from repro.aio import AsyncClusterClient, AsyncMetadataServer
from repro.cluster import ClusterClient, ClusterMap, ClusterNode, QuorumWriteError
from repro.errors import DiscoveryError
from repro.metaserver import MetadataServer
from repro.metaserver.catalog import MetadataCatalog
from repro.workloads import ASDOFF_B_SCHEMA


class AsyncCluster:
    """S×R async servers with attached nodes."""

    def __init__(self, shards, replicas):
        self.shards = shards
        self.replicas = replicas
        count = shards * replicas
        self.catalogs = [MetadataCatalog() for _ in range(count)]
        self.servers = []
        self.nodes = []
        self.addresses = []
        self.cluster_map = None

    async def __aenter__(self):
        for catalog in self.catalogs:
            self.servers.append(await AsyncMetadataServer(catalog=catalog).start())
        self.addresses = ["%s:%d" % server.address for server in self.servers]
        self.cluster_map = ClusterMap.grid(
            self.addresses, shards=self.shards, replicas=self.replicas
        )
        self.nodes = [
            ClusterNode(
                f"n{index}", self.addresses[index], self.cluster_map,
                catalog=self.catalogs[index], timeout=1.0,
            )
            for index in range(len(self.servers))
        ]
        return self

    async def __aexit__(self, *exc_info):
        for server in self.servers:
            await server.stop()


class TestAsyncQuorumWrites:
    def test_full_fanout_ok(self, arun):
        async def scenario():
            async with AsyncCluster(2, 2) as cluster:
                async with AsyncClusterClient(
                    cluster.cluster_map, write_quorum=2
                ) as client:
                    for i in range(8):
                        result = await client.publish(
                            f"/schemas/a{i}.xsd", ASDOFF_B_SCHEMA
                        )
                        assert result.outcome == "ok"
                    assert client.stats["quorum_ok"] == 8
                # every node of each owning shard holds every entry
                for i in range(8):
                    path = f"/schemas/a{i}.xsd"
                    for address in cluster.cluster_map.replicas_for(path):
                        node = cluster.nodes[cluster.addresses.index(address)]
                        assert node.store.get(path) is not None

        arun(scenario())

    def test_dead_replica_gives_partial_then_failed(self, arun):
        async def scenario():
            async with AsyncCluster(1, 2) as cluster:
                await cluster.servers[1].stop()
                async with AsyncClusterClient(
                    cluster.cluster_map, write_quorum=1
                ) as client:
                    result = await client.publish("/schemas/p.xsd", ASDOFF_B_SCHEMA)
                    assert result.outcome == "partial"
                async with AsyncClusterClient(
                    cluster.cluster_map, write_quorum=2
                ) as strict:
                    with pytest.raises(QuorumWriteError):
                        await strict.publish("/schemas/q.xsd", ASDOFF_B_SCHEMA)
                    assert strict.stats["quorum_failed"] == 1

        arun(scenario())

    def test_unpublish_tombstones(self, arun):
        async def scenario():
            async with AsyncCluster(1, 2) as cluster:
                async with AsyncClusterClient(
                    cluster.cluster_map, write_quorum=2
                ) as client:
                    await client.publish("/schemas/t.xsd", ASDOFF_B_SCHEMA)
                    await client.unpublish("/schemas/t.xsd")
                    with pytest.raises(DiscoveryError):
                        await client.get("/schemas/t.xsd")
                for node in cluster.nodes:
                    assert node.store.get("/schemas/t.xsd").deleted

        arun(scenario())


class TestAsyncFailoverReads:
    def test_read_falls_over_to_live_replica(self, arun):
        async def scenario():
            async with AsyncCluster(1, 2) as cluster:
                async with AsyncClusterClient(
                    cluster.cluster_map, write_quorum=2
                ) as client:
                    await client.publish("/schemas/f.xsd", ASDOFF_B_SCHEMA)
                    _, replicas = client.router.route("/schemas/f.xsd")
                    victim = cluster.addresses.index(replicas[0])
                    await cluster.servers[victim].stop()
                    body = await client.get("/schemas/f.xsd")
                    assert body.decode("utf-8") == ASDOFF_B_SCHEMA
                    assert client.stats["replica_failovers"] >= 1

        arun(scenario())

    def test_all_replicas_down_raises(self, arun):
        async def scenario():
            async with AsyncCluster(1, 2) as cluster:
                for server in cluster.servers:
                    await server.stop()
                async with AsyncClusterClient(
                    cluster.cluster_map, write_quorum=1
                ) as client:
                    with pytest.raises(DiscoveryError, match="all 2 replicas"):
                        await client.get("/schemas/x.xsd")

        arun(scenario())


class TestCrossPlane:
    def test_async_writes_threaded_reads(self, arun):
        """An async client's quorum writes serve a sync cluster client."""
        catalogs = [MetadataCatalog() for _ in range(2)]
        servers = [MetadataServer(catalog=c) for c in catalogs]
        addresses = ["%s:%d" % s.address for s in servers]
        cluster_map = ClusterMap.grid(addresses, shards=1, replicas=2)
        nodes = [
            ClusterNode(f"n{i}", addresses[i], cluster_map, catalog=catalogs[i])
            for i in range(2)
        ]
        for server in servers:
            server.start()
        try:
            async def write():
                async with AsyncClusterClient(
                    cluster_map, write_quorum=2
                ) as client:
                    return await client.publish("/schemas/x.xsd", ASDOFF_B_SCHEMA)

            assert arun(write()).outcome == "ok"
            sync_client = ClusterClient(cluster_map, write_quorum=2)
            assert (
                sync_client.get_bytes("/schemas/x.xsd").decode("utf-8")
                == ASDOFF_B_SCHEMA
            )
            # Both routers agree on every key (shared ring).
            async def route():
                async with AsyncClusterClient(cluster_map) as client:
                    return [
                        client.router.route(f"/doc{i}")[0].name for i in range(50)
                    ]

            async_routes = arun(route())
            sync_routes = [
                sync_client.router.route(f"/doc{i}")[0].name for i in range(50)
            ]
            assert async_routes == sync_routes
        finally:
            for server in servers:
                server.stop()
