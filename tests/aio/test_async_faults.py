"""AsyncFaultyChannel: PR 1's seeded fault plans replay on the async plane.

The contract: a :class:`~repro.faults.plan.FaultPlan` is plane-agnostic.
The same seed produces the same decision stream and the same corrupted
byte positions whether the plan drives the sync
:class:`~repro.faults.channel.FaultyChannel` or the async wrapper — a
chaos schedule developed against one plane replays fault-for-fault
against the other.
"""

import asyncio

import pytest

from repro import aio
from repro.arch import SPARC_32, X86_64
from repro.errors import ChannelClosedError, TransportTimeoutError
from repro.faults import FaultPlan, FaultyChannel
from repro.pbio import IOContext, IOField
from repro.transport import connect as sync_connect
from repro.transport import listen as sync_listen


async def async_pair():
    listener = await aio.listen()
    client_task = asyncio.ensure_future(aio.connect(*listener.address))
    server = await listener.accept(timeout=5)
    client = await client_task
    return listener, client, server


class TestSeedParity:
    def test_same_seed_same_decision_stream(self, arun):
        """30 sends under the same seeded plan inject identical faults."""

        def sync_run(plan):
            with sync_listen() as listener:
                raw_client = sync_connect(*listener.address)
                server = listener.accept(timeout=5)
                channel = FaultyChannel(raw_client, plan)
                for i in range(30):
                    channel.send(b"m%d" % i)
                channel.close()
                server.close()
            return plan.injected

        async def async_run(plan):
            listener, raw_client, server = await async_pair()
            channel = aio.AsyncFaultyChannel(raw_client, plan)
            for i in range(30):
                await channel.send(b"m%d" % i)
            await channel.close()
            await server.close()
            await listener.close()
            return plan.injected

        make_plan = lambda: FaultPlan(
            seed=42, drop=0.3, corrupt=0.2, delay=0.1,
            delay_seconds=0.0, ops=("send",),
        )
        sync_events = sync_run(make_plan())
        async_events = arun(async_run(make_plan()))
        assert sync_events == async_events
        assert len(sync_events) > 0  # the rates actually fired

    def test_same_seed_corrupts_identical_bytes(self, arun):
        """The corruption RNG derives from the seed on both planes."""
        payloads = [bytes(range(32)) for _ in range(10)]

        def sync_run():
            with sync_listen() as listener:
                raw_client = sync_connect(*listener.address)
                server = listener.accept(timeout=5)
                channel = FaultyChannel(
                    raw_client, FaultPlan(seed=7, corrupt=1.0, ops=("send",))
                )
                received = []
                for payload in payloads:
                    channel.send(payload)
                    received.append(server.recv(timeout=5))
                channel.close()
                server.close()
            return received

        async def async_run():
            listener, raw_client, server = await async_pair()
            channel = aio.AsyncFaultyChannel(
                raw_client, FaultPlan(seed=7, corrupt=1.0, ops=("send",))
            )
            received = []
            for payload in payloads:
                await channel.send(payload)
                await channel.flush()
                received.append(await server.recv(timeout=5))
            await channel.close()
            await server.close()
            await listener.close()
            return received

        sync_received = sync_run()
        async_received = arun(async_run())
        assert sync_received == async_received
        # And corruption really happened (same way on both planes).
        assert all(got != sent for got, sent in zip(sync_received, payloads))


class TestExplicitSchedules:
    def test_scheduled_drops_against_async_broker(self, arun):
        """Drop exactly publishes 3 and 7 of 8; the subscriber sees 6.

        Send index accounting on the publisher connection: send 1 is the
        stream's format metadata, sends 2-9 the data publishes, send 10
        the flush PING — so ``on(4)``/``on(8)`` drop data events with
        ``alt`` 2 and 6.
        """
        plan = FaultPlan(seed=0, ops=("send",)).on(4, "drop").on(8, "drop")

        async def scenario():
            async with aio.AsyncEventBroker() as broker:
                host, port = broker.address
                subscriber = await aio.AsyncBackboneClient.connect(
                    host, port, IOContext(X86_64)
                )
                await subscriber.subscribe("s")

                context = IOContext(SPARC_32)
                context.register_format(
                    "tick", [IOField("alt", "integer", 4, 0)]
                )
                publisher_client = aio.AsyncBackboneClient(
                    aio.AsyncFaultyChannel(await aio.connect(host, port), plan),
                    context,
                )
                publisher = publisher_client.publisher("s")
                for i in range(8):
                    await publisher.publish("tick", {"alt": i})
                await publisher_client.flush()  # barrier: all routed

                received = []
                while True:
                    try:
                        event = await subscriber.next_event(timeout=0.3)
                    except TransportTimeoutError:
                        break
                    received.append(event.values["alt"])
                await subscriber.close()
                await publisher_client.close()
                return received

        assert arun(scenario()) == [0, 1, 3, 4, 5, 7]
        assert [e.kind for e in plan.injected] == ["drop", "drop"]

    def test_injected_reset_closes_the_channel(self, arun):
        async def scenario():
            listener, client, server = await async_pair()
            channel = aio.AsyncFaultyChannel(
                client, FaultPlan().on(1, "reset")
            )
            with pytest.raises(ChannelClosedError, match="injected"):
                await channel.send(b"doomed")
            assert channel.closed
            await server.close()
            await listener.close()

        arun(scenario())

    def test_injected_timeout_leaves_channel_usable(self, arun):
        async def scenario():
            listener, client, server = await async_pair()
            channel = aio.AsyncFaultyChannel(
                client, FaultPlan().on(1, "timeout")
            )
            with pytest.raises(TransportTimeoutError, match="injected"):
                await channel.send(b"in flight forever")
            # The fault was synthetic: the inner channel still works.
            assert not channel.closed
            await channel.send(b"second try")
            assert await server.recv(timeout=5) == b"second try"
            await channel.close()
            await server.close()
            await listener.close()

        arun(scenario())
