"""AsyncEventBroker / AsyncBackboneClient: pub/sub across planes.

The broker envelope protocol (docs/PROTOCOL.md §7) is plane-agnostic:
an async client works against the threaded :class:`BrokerServer`, a
sync client works against :class:`AsyncEventBroker`, and one
:class:`EventBackbone` can sit behind a broker of each plane at once.
Plus the async-only contract: bounded subscriber queues that detach a
consumer that stops reading.
"""

import pytest

from repro import aio
from repro.arch import SPARC_32, X86_64
from repro.events.backbone import EventBackbone
from repro.events.remote import BrokerServer, RemoteBackboneClient
from repro.pbio import IOContext, IOField


def track_context(arch, register=True):
    context = IOContext(arch)
    if register:
        context.register_format(
            "track",
            [
                IOField("flight", "string", arch.pointer_size, 0),
                IOField("alt", "integer", 4, arch.pointer_size),
            ],
        )
    return context


class TestAsyncPlane:
    def test_publish_subscribe_roundtrip(self, arun):
        async def scenario():
            async with aio.AsyncEventBroker() as broker:
                host, port = broker.address
                subscriber = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(X86_64, register=False)
                )
                await subscriber.subscribe("flights.*")
                publisher_client = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(SPARC_32)
                )
                publisher = publisher_client.publisher("flights.atl")
                await publisher.publish("track", {"flight": "DL1", "alt": 31000})
                event = await subscriber.next_event(timeout=5)
                await subscriber.close()
                await publisher_client.close()
                return event

        event = arun(scenario())
        assert event.stream == "flights.atl"
        assert event.values == {"flight": "DL1", "alt": 31000}

    def test_many_events_in_order(self, arun):
        async def scenario():
            async with aio.AsyncEventBroker() as broker:
                host, port = broker.address
                subscriber = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(X86_64, register=False)
                )
                await subscriber.subscribe("s")
                publisher_client = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(SPARC_32)
                )
                publisher = publisher_client.publisher("s")
                for i in range(50):
                    await publisher.publish("track", {"flight": f"F{i}", "alt": i})
                alts = [
                    (await subscriber.next_event(timeout=5)).values["alt"]
                    for _ in range(50)
                ]
                await subscriber.close()
                await publisher_client.close()
                return alts

        assert arun(scenario()) == list(range(50))

    def test_late_joiner_gets_metadata_replay(self, arun):
        async def scenario():
            async with aio.AsyncEventBroker() as broker:
                host, port = broker.address
                publisher_client = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(SPARC_32)
                )
                publisher = publisher_client.publisher("s")
                await publisher.publish("track", {"flight": "EARLY", "alt": 1})
                await publisher_client.flush()  # EARLY routed (and dropped)

                late = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(X86_64, register=False)
                )
                await late.subscribe("s")
                await publisher.publish("track", {"flight": "LATE", "alt": 2})
                event = await late.next_event(timeout=5)
                await late.close()
                await publisher_client.close()
                return event

        # The late joiner decodes thanks to the broker's metadata replay.
        assert arun(scenario()).values["flight"] == "LATE"


class TestCrossPlane:
    def test_sync_publisher_to_async_subscriber(self):
        with aio.BackgroundLoop() as bg:
            broker = bg.run(aio.AsyncEventBroker().start())
            host, port = broker.address
            subscriber = bg.run(
                aio.AsyncBackboneClient.connect(
                    host, port, track_context(X86_64, register=False)
                )
            )
            bg.run(subscriber.subscribe("s"))

            sync_client = RemoteBackboneClient.connect(
                host, port, track_context(SPARC_32)
            )
            publisher = sync_client.publisher("s")
            for i in range(5):
                publisher.publish("track", {"flight": f"S{i}", "alt": i})
            flights = [
                bg.run(subscriber.next_event(timeout=5)).values["flight"]
                for _ in range(5)
            ]
            assert flights == [f"S{i}" for i in range(5)]
            sync_client.close()
            bg.run(subscriber.close())
            bg.run(broker.stop())

    def test_async_publisher_to_sync_subscriber(self, arun):
        with BrokerServer() as broker:
            host, port = broker.address
            subscriber = RemoteBackboneClient.connect(
                host, port, track_context(X86_64, register=False)
            )
            subscriber.subscribe("s")

            async def publish():
                client = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(SPARC_32)
                )
                publisher = client.publisher("s")
                for i in range(3):
                    await publisher.publish("track", {"flight": f"A{i}", "alt": i})
                await client.flush()
                await client.close()

            arun(publish())
            flights = [
                subscriber.next_event(timeout=5).values["flight"] for _ in range(3)
            ]
            assert flights == ["A0", "A1", "A2"]
            subscriber.close()

    def test_shared_backbone_bridges_planes(self):
        backbone = EventBackbone()
        with BrokerServer(backbone=backbone) as threaded:
            with aio.BackgroundLoop() as bg:
                async_broker = bg.run(
                    aio.AsyncEventBroker(backbone=backbone).start()
                )
                # Subscribe through the async front...
                subscriber = bg.run(
                    aio.AsyncBackboneClient.connect(
                        *async_broker.address, track_context(X86_64, register=False)
                    )
                )
                bg.run(subscriber.subscribe("s"))
                # ...publish through the threaded front.
                sync_client = RemoteBackboneClient.connect(
                    *threaded.address, track_context(SPARC_32)
                )
                sync_client.publisher("s").publish(
                    "track", {"flight": "BRIDGED", "alt": 7}
                )
                event = bg.run(subscriber.next_event(timeout=5))
                assert event.values == {"flight": "BRIDGED", "alt": 7}
                sync_client.close()
                bg.run(subscriber.close())
                bg.run(async_broker.stop())


class TestBackpressure:
    def test_non_reading_subscriber_is_detached(self, arun):
        async def scenario():
            async with aio.AsyncEventBroker(queue_limit=4) as broker:
                host, port = broker.address
                stalled = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(X86_64, register=False)
                )
                await stalled.subscribe("s")
                # ...and never reads again: its socket fills, the
                # delivery task blocks, its bounded queue overflows.
                publisher_client = await aio.AsyncBackboneClient.connect(
                    host, port, track_context(SPARC_32)
                )
                publisher = publisher_client.publisher("s")
                # Enough bytes to overrun the stalled socket's kernel
                # buffering, block the delivery task, and overflow the
                # 4-message queue.
                blob = "x" * 262144
                for i in range(160):
                    await publisher.publish("track", {"flight": blob, "alt": i})
                await publisher_client.flush()  # every publish has routed
                dropped = broker.backbone.dropped_sinks
                await publisher_client.close()
                await stalled.close()
                return dropped

        assert arun(scenario()) >= 1
