"""AsyncTCPChannel: framing parity with the sync plane, locks, coalescing.

The interop contract under test: an async channel and a sync
:class:`~repro.transport.tcp.TCPChannel` speak byte-identical frames, so
either end of a connection can be on either plane.
"""

import asyncio
import threading

import pytest

from repro import aio
from repro.errors import ChannelClosedError, TransportTimeoutError, WireError
from repro.transport import connect as sync_connect
from repro.transport import listen as sync_listen
from repro.wire.framing import frame


async def async_pair():
    """A connected (client, server) AsyncTCPChannel pair plus listener."""
    listener = await aio.listen()
    client_task = asyncio.ensure_future(aio.connect(*listener.address))
    server = await listener.accept(timeout=5)
    client = await client_task
    return listener, client, server


class TestAsyncToAsync:
    def test_roundtrip_in_order(self, arun):
        async def scenario():
            listener, client, server = await async_pair()
            await client.send(b"one")
            await client.send(b"two")
            assert await server.recv(timeout=5) == b"one"
            assert await server.recv(timeout=5) == b"two"
            await server.send(b"pong")
            assert await client.recv(timeout=5) == b"pong"
            await client.close()
            await server.close()
            await listener.close()

        arun(scenario())

    def test_recv_after_peer_close_raises_cleanly(self, arun):
        async def scenario():
            listener, client, server = await async_pair()
            await client.close()
            with pytest.raises(ChannelClosedError):
                await server.recv(timeout=5)
            await server.close()
            await listener.close()

        arun(scenario())

    def test_concurrent_sends_never_interleave(self, arun):
        async def scenario():
            listener, client, server = await async_pair()
            payloads = [bytes([i]) * 30_000 for i in range(8)]

            async def blast(payload):
                for _ in range(10):
                    await client.send(payload)

            senders = [asyncio.ensure_future(blast(p)) for p in payloads]
            received = [await server.recv(timeout=10) for _ in range(80)]
            await asyncio.gather(*senders)
            for message in received:
                assert message == bytes([message[0]]) * 30_000
            await client.close()
            await server.close()
            await listener.close()

        arun(scenario())

    def test_small_frames_coalesce_into_few_writes(self, arun):
        async def scenario():
            listener, client, server = await async_pair()
            for i in range(50):
                await client.send(b"x%d" % i)  # all far below coalesce_bytes
            received = [await server.recv(timeout=5) for i in range(50)]
            assert received == [b"x%d" % i for i in range(50)]
            # A burst in one tick lands in far fewer transport writes.
            assert client.flushes < 50
            assert client.frames_sent == 50
            await client.close()
            await server.close()
            await listener.close()

        arun(scenario())

    def test_timeout_never_poisons_the_stream(self, arun):
        async def scenario():
            listener, client, server = await async_pair()
            with pytest.raises(TransportTimeoutError):
                await server.recv(timeout=0.05)
            assert not server.poisoned
            await client.send(b"after the timeout")
            assert await server.recv(timeout=5) == b"after the timeout"
            await client.close()
            await server.close()
            await listener.close()

        arun(scenario())

    def test_oversized_frame_header_rejected(self, arun):
        async def scenario():
            listener, client, server = await async_pair()
            # A desynchronized length prefix must not trigger a huge read.
            client._writer.write(b"\xff\xff\xff\xff")
            await client._writer.drain()
            with pytest.raises(WireError, match="exceeds limit"):
                await server.recv(timeout=5)
            await client.close()
            await server.close()
            await listener.close()

        arun(scenario())


class TestCrossPlane:
    def test_async_sender_emits_byte_identical_frames(self, arun):
        """Raw wire capture of the async sender equals frame() exactly."""
        with sync_listen() as listener:
            raw = {}

            def capture():
                channel = listener.accept(timeout=5)
                raw["bytes"] = channel._sock.recv(1024)
                channel.close()

            collector = threading.Thread(target=capture)
            collector.start()

            async def send():
                channel = await aio.connect(*listener.address)
                await channel.send(b"alpha")
                await channel.send(b"beta")
                await channel.flush()
                await asyncio.sleep(0.2)  # let the capture thread read
                await channel.close()

            arun(send())
            collector.join()
        assert raw["bytes"] == frame(b"alpha") + frame(b"beta")

    def test_async_client_to_sync_server(self, arun):
        with sync_listen() as listener:
            result = {}

            def serve():
                channel = listener.accept(timeout=5)
                result["got"] = channel.recv(timeout=5)
                channel.send(b"reply from sync")
                channel.close()

            server_thread = threading.Thread(target=serve)
            server_thread.start()

            async def client():
                channel = await aio.connect(*listener.address)
                await channel.send(b"hello from async")
                reply = await channel.recv(timeout=5)
                await channel.close()
                return reply

            reply = arun(client())
            server_thread.join()
        assert result["got"] == b"hello from async"
        assert reply == b"reply from sync"

    def test_sync_client_to_async_server(self):
        with aio.BackgroundLoop() as bg:
            listener = bg.run(aio.listen())
            host, port = listener.address

            async def serve():
                channel = await listener.accept(timeout=5)
                message = await channel.recv(timeout=5)
                await channel.send(message.upper())
                await channel.flush()
                return message

            served = bg.submit(serve())
            channel = sync_connect(host, port)
            channel.send(b"shout this")
            assert channel.recv(timeout=5) == b"SHOUT THIS"
            channel.close()
            assert served.result(timeout=5) == b"shout this"
            bg.run(listener.close())
