"""AsyncMetadataServer / AsyncMetadataClient: cross-plane HTTP interop.

Every combination of {sync, async} client x {threaded, async} server
must produce identical documents — the servers share a
:class:`~repro.metaserver.catalog.MetadataCatalog` and the clients speak
one HTTP subset.  Plus the async-only behaviors: pipelining, connection
pooling, and graceful drain.
"""

import socket
import threading
import time

import pytest

from repro import IOContext, SPARC_32, XML2Wire, aio
from repro.errors import MetadataHTTPError
from repro.metaserver import (
    HTTPRequest,
    MetadataCatalog,
    MetadataClient,
    MetadataServer,
    http_get,
)
from repro.pbio.fmserver import FormatServer
from repro.workloads import ASDOFF_A_SCHEMA, ASDOFF_B_SCHEMA


class TestSharedCatalog:
    def test_both_planes_serve_identical_documents(self, arun):
        catalog = MetadataCatalog()
        catalog.publish_schema("/shared.xsd", ASDOFF_B_SCHEMA)
        with MetadataServer(catalog=catalog) as threaded:
            sync_body = http_get(threaded.url_for("/shared.xsd"))

            async def fetch_async_plane():
                async with aio.AsyncMetadataServer(catalog=catalog) as server:
                    async with aio.AsyncMetadataClient() as client:
                        return await client.get(server.url_for("/shared.xsd"))

            async_body = arun(fetch_async_plane())
        assert sync_body == async_body

    def test_publication_through_either_front_end_is_visible(self, arun):
        catalog = MetadataCatalog()
        with MetadataServer(catalog=catalog) as threaded:
            async def scenario():
                async with aio.AsyncMetadataServer(catalog=catalog) as server:
                    # Publish through the async server, read via the threaded.
                    server.publish_schema("/a.xsd", ASDOFF_A_SCHEMA)
                    return http_get(threaded.url_for("/a.xsd"))

            body = arun(scenario())
        assert body.decode("utf-8") == ASDOFF_A_SCHEMA


class TestCrossPlaneClients:
    def test_sync_client_against_async_server(self):
        with aio.BackgroundLoop() as bg:
            server = bg.run(aio.AsyncMetadataServer().start())
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
            body = http_get(url)
            # The resilient sync client (cache, retries) works unchanged.
            client = MetadataClient(ttl=60)
            assert client.get_bytes(url) == body
            assert client.get_bytes(url) == body
            assert client.stats()["hits"] == 1
            bg.run(server.stop())

    def test_async_client_against_threaded_server_falls_back(self, arun):
        with MetadataServer() as server:
            url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)

            async def scenario():
                async with aio.AsyncMetadataClient() as client:
                    bodies = await client.get_many([url] * 6)
                    return bodies, client.pipeline_fallbacks

            bodies, fallbacks = arun(scenario())
        assert len(bodies) == 6
        assert len(set(bodies)) == 1
        # The threaded server closes per-response; the client noticed and
        # finished the batch without pipelining.
        assert fallbacks == 1

    def test_head_and_404_parity(self, arun):
        catalog = MetadataCatalog()
        catalog.publish_schema("/here.xsd", ASDOFF_B_SCHEMA)

        async def scenario():
            async with aio.AsyncMetadataServer(catalog=catalog) as server:
                async with aio.AsyncMetadataClient() as client:
                    with pytest.raises(MetadataHTTPError) as err:
                        await client.get(server.url_for("/missing.xsd"))
                    return err.value.status

        assert arun(scenario()) == 404


class TestPipelining:
    def test_many_requests_share_one_connection(self, arun):
        async def scenario():
            async with aio.AsyncMetadataServer() as server:
                url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
                async with aio.AsyncMetadataClient() as client:
                    bodies = await client.get_many([url] * 20)
                    assert client.connections_opened == 1
                    assert client.requests_sent == 20
                    # A second batch reuses the pooled connection.
                    await client.get_many([url] * 5)
                    assert client.connections_opened == 1
                    assert client.pool_reuses >= 1
                return bodies, server.requests_served, server.connections_served

        bodies, served, connections = arun(scenario())
        assert len(bodies) == 20 and len(set(bodies)) == 1
        assert served == 25
        assert connections == 1

    def test_pipelined_format_resolutions(self, arun):
        format_server = FormatServer()
        context = IOContext(SPARC_32)
        XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
        fmt = context.lookup_format("ASDOffEvent")
        ids = [format_server.register(fmt)]

        async def scenario():
            async with aio.AsyncMetadataServer() as server:
                server.attach_format_server(format_server)
                host, port = server.address
                base = f"http://{host}:{port}"
                async with aio.AsyncMetadataClient() as client:
                    formats = await client.get_formats(base, ids * 8)
                    assert client.connections_opened == 1
                    return formats

        formats = arun(scenario())
        assert len(formats) == 8
        assert all(f.format_id == fmt.format_id for f in formats)


class TestGracefulDrain:
    def test_in_flight_request_completes_while_idle_connection_drops(self):
        started = threading.Event()

        def slow_document(request: HTTPRequest) -> str:
            started.set()
            time.sleep(0.3)  # hold the in-flight request across stop()
            return "<slow/>"

        with aio.BackgroundLoop() as bg:
            server = bg.run(aio.AsyncMetadataServer().start())
            server.publish_dynamic("/slow.xml", slow_document)
            host, port = server.address

            idle = socket.create_connection((host, port), timeout=5)
            busy = socket.create_connection((host, port), timeout=5)
            busy.sendall(HTTPRequest("GET", "/slow.xml").render())
            assert started.wait(timeout=5)
            stopping = bg.submit(server.stop(drain=5.0))

            busy.settimeout(5)
            response = b""
            while b"<slow/>" not in response:
                chunk = busy.recv(4096)
                if not chunk:
                    break
                response += chunk
            stopping.result(timeout=10)

            # The in-flight request got its full answer...
            assert b"200 OK" in response and b"<slow/>" in response
            # ...while the idle keep-alive connection was closed.
            idle.settimeout(5)
            assert idle.recv(1024) == b""
            idle.close()
            busy.close()
