"""Rolling upgrade over a live broker, on both serving planes.

The format-evolution scenario PROTOCOL §16 promises: a fleet of
publishers upgrades from track v1 to track v2 *while subscribers on
both versions keep consuming the same stream*.  Old and new publishers
interleave mid-stream; every event decodes (zero decode errors), v1
subscribers see new fields dropped, v2 subscribers see missing fields
defaulted, and the converter cache compiles exactly one converter per
live (wire, native) pair regardless of traffic volume.
"""

from repro import aio
from repro.arch import SPARC_32, X86_64
from repro.events.remote import BrokerServer, RemoteBackboneClient
from repro.pbio import FormatLineage, IOContext, IOField


def v1_fields(arch):
    return [
        IOField("flight", "string", arch.pointer_size, 0),
        IOField("alt", "integer", 4, arch.pointer_size),
    ]


def v2_fields(arch):
    return v1_fields(arch) + [
        IOField("speed", "double", 8, arch.pointer_size + 8),
    ]


TRAFFIC = [
    # (generation publishing, record sent)
    ("v1", {"flight": "A", "alt": 1}),
    ("v1", {"flight": "B", "alt": 2}),
    # The upgrade starts: v2 publishers join, v1 publishers still live.
    ("v2", {"flight": "C", "alt": 3, "speed": 99.0}),
    ("v1", {"flight": "D", "alt": 4}),
    ("v2", {"flight": "E", "alt": 5, "speed": 100.0}),
    # The upgrade completes: only v2 publishers remain.
    ("v2", {"flight": "F", "alt": 6, "speed": 101.0}),
]


def by_flight(records):
    # Events from *different* publisher connections have no global
    # ordering guarantee; each subscriber's view is compared as a set.
    return sorted(records, key=lambda record: record["flight"])


def expected_v1_view():
    return [
        {"flight": record["flight"], "alt": record["alt"]}
        for _, record in TRAFFIC
    ]


def expected_v2_view():
    return [
        {"flight": record["flight"], "alt": record["alt"],
         "speed": record.get("speed", 0.0)}
        for _, record in TRAFFIC
    ]


def test_rolling_upgrade_threaded_plane():
    lineage = FormatLineage()
    with BrokerServer() as broker:
        host, port = broker.address

        old_sender = IOContext(SPARC_32, lineage=lineage)
        old_sender.register_format("track", v1_fields(SPARC_32))
        new_sender = IOContext(X86_64, lineage=lineage)
        new_sender.register_format("track", v2_fields(X86_64))

        v1_rx = IOContext(X86_64)
        v1_rx.register_format("track", v1_fields(X86_64))
        v2_rx = IOContext(SPARC_32)
        v2_rx.register_format("track", v2_fields(SPARC_32))

        v1_subscriber = RemoteBackboneClient.connect(host, port, v1_rx)
        v1_subscriber.subscribe("tracks")
        v2_subscriber = RemoteBackboneClient.connect(host, port, v2_rx)
        v2_subscriber.subscribe("tracks")

        old_client = RemoteBackboneClient.connect(host, port, old_sender)
        new_client = RemoteBackboneClient.connect(host, port, new_sender)
        publishers = {
            "v1": old_client.publisher("tracks"),
            "v2": new_client.publisher("tracks"),
        }
        for generation, record in TRAFFIC:
            publishers[generation].publish("track", record)

        v1_seen = [
            v1_subscriber.next_event(timeout=5, expect="track").values
            for _ in TRAFFIC
        ]
        v2_seen = [
            v2_subscriber.next_event(timeout=5, expect="track").values
            for _ in TRAFFIC
        ]
        assert by_flight(v1_seen) == expected_v1_view()
        assert by_flight(v2_seen) == expected_v2_view()

        # Amortization: one converter per live (wire, native) pair —
        # two wire generations each — however long the stream runs.
        assert v1_rx.converter_builds == 2
        assert v2_rx.converter_builds == 2

        # The senders shared a lineage: v2 chains to v1 by name.
        v2_fmt = new_sender.lookup_format("track")
        v1_fmt = old_sender.lookup_format("track")
        assert lineage.ancestry(v2_fmt.format_id) == [
            v2_fmt.format_id, v1_fmt.format_id,
        ]

        for client in (v1_subscriber, v2_subscriber, old_client, new_client):
            client.close()


def test_rolling_upgrade_async_plane(arun):
    async def scenario():
        async with aio.AsyncEventBroker() as broker:
            host, port = broker.address

            old_sender = IOContext(SPARC_32)
            old_sender.register_format("track", v1_fields(SPARC_32))
            new_sender = IOContext(X86_64)
            new_sender.register_format("track", v2_fields(X86_64))

            v1_rx = IOContext(X86_64)
            v1_rx.register_format("track", v1_fields(X86_64))
            v2_rx = IOContext(SPARC_32)
            v2_rx.register_format("track", v2_fields(SPARC_32))

            v1_subscriber = await aio.AsyncBackboneClient.connect(host, port, v1_rx)
            await v1_subscriber.subscribe("tracks")
            v2_subscriber = await aio.AsyncBackboneClient.connect(host, port, v2_rx)
            await v2_subscriber.subscribe("tracks")

            old_client = await aio.AsyncBackboneClient.connect(host, port, old_sender)
            new_client = await aio.AsyncBackboneClient.connect(host, port, new_sender)
            publishers = {
                "v1": old_client.publisher("tracks"),
                "v2": new_client.publisher("tracks"),
            }
            for generation, record in TRAFFIC:
                await publishers[generation].publish("track", record)

            v1_seen = [
                (await v1_subscriber.next_event(timeout=5, expect="track")).values
                for _ in TRAFFIC
            ]
            v2_seen = [
                (await v2_subscriber.next_event(timeout=5, expect="track")).values
                for _ in TRAFFIC
            ]
            builds = (v1_rx.converter_builds, v2_rx.converter_builds)
            for client in (v1_subscriber, v2_subscriber, old_client, new_client):
                await client.close()
            return v1_seen, v2_seen, builds

    v1_seen, v2_seen, builds = arun(scenario())
    assert by_flight(v1_seen) == expected_v1_view()
    assert by_flight(v2_seen) == expected_v2_view()
    assert builds == (2, 2)
