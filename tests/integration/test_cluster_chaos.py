"""Chaos acceptance for the sharded metadata plane (ISSUE 6).

A 3-shard × 2-replica cluster under seeded faults:

- one replica is **killed mid-write** — quorum writes keep succeeding
  and client reads of *every* document keep answering (zero
  client-visible read failures: replica death is a routing event);
- the replica **rejoins** (same port, same catalog) after missing
  writes — anti-entropy converges every replica of every shard to a
  byte-identical store within a bounded number of rounds;
- a **flaky replica** (seeded :class:`~repro.faults.plan.ServerFaultPlan`
  injecting 5xx answers) never breaks quorum or reads — the retry
  policy and fan-out absorb it deterministically.

Every schedule is seeded (CHAOS_SEED): a failure here replays
fault-for-fault.
"""

import pytest

from repro.cluster import ClusterClient, ClusterMap, ClusterNode
from repro.faults import ServerFaultPlan
from repro.metaserver import (
    FlakyMetadataServer,
    MetadataClient,
    MetadataServer,
    RetryPolicy,
)
from repro.metaserver.catalog import MetadataCatalog
from repro.workloads import ASDOFF_B_SCHEMA

CHAOS_SEED = 20_260_807
SHARDS, REPLICAS = 3, 2
DOCS = [f"/schemas/doc{i:02d}.xsd" for i in range(24)]


def text_for(path):
    """Per-document content so convergence checks catch any mixups."""
    return ASDOFF_B_SCHEMA.replace("asdoff", path.strip("/").replace("/", "-"))


def fast_client():
    return MetadataClient(
        ttl=0,  # every read hits the network: failover is really exercised
        timeout=1.0,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0),
        seed=CHAOS_SEED,
        sleep=lambda _: None,
    )


class Cluster3x2:
    """The scenario cluster: 6 threaded servers, nodes, no background loops."""

    def __init__(self, flaky_plan=None):
        count = SHARDS * REPLICAS
        self.catalogs = [MetadataCatalog() for _ in range(count)]
        self.servers = []
        for index, catalog in enumerate(self.catalogs):
            if flaky_plan is not None and index == 0:
                server = FlakyMetadataServer(plan=flaky_plan)
                server.catalog = catalog  # serve the cluster catalog
            else:
                server = MetadataServer(catalog=catalog)
            self.servers.append(server)
        self.addresses = ["%s:%d" % server.address for server in self.servers]
        self.cluster_map = ClusterMap.grid(
            self.addresses, shards=SHARDS, replicas=REPLICAS
        )
        self.nodes = [
            ClusterNode(
                f"replica{index}", self.addresses[index], self.cluster_map,
                catalog=self.catalogs[index], timeout=1.0,
            )
            for index in range(count)
        ]
        for server in self.servers:
            server.start()

    def stop(self):
        for server in self.servers:
            server.stop()

    def kill(self, index):
        self.servers[index].stop()

    def rejoin(self, index):
        """Restart the killed replica on its old port with its old state."""
        host, port = self.addresses[index].split(":")
        self.servers[index] = MetadataServer(
            host, int(port), catalog=self.catalogs[index]
        ).start()

    def digests(self):
        by_shard = {}
        for index, node in enumerate(self.nodes):
            for shard in self.cluster_map.shards_of(self.addresses[index]):
                by_shard.setdefault(shard.name, set()).add(
                    node.store.digest(self.cluster_map, shard.name)
                )
        return by_shard

    def converged(self):
        return all(len(digests) == 1 for digests in self.digests().values())


class TestReplicaKillMidWrite:
    def test_kill_rejoin_convergence(self):
        cluster = Cluster3x2()
        try:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(),
                write_quorum=1, origin="chaos-writer",
            )
            # Phase 1: half the documents land on a fully-live cluster.
            for path in DOCS[:12]:
                assert client.publish(path, text_for(path)).outcome == "ok"

            # Phase 2: kill one replica mid-write-stream.
            victim = 0
            cluster.kill(victim)
            partials = 0
            for path in DOCS[12:]:
                result = client.publish(path, text_for(path))
                assert result.ok, f"quorum write failed for {path}: {result}"
                partials += result.outcome == "partial"
            # The victim replicates some shards, so some writes must
            # have been partial — the outage was actually in the path.
            assert partials > 0

            # Zero failed client reads during the outage, every document.
            read_failures = 0
            for path in DOCS:
                try:
                    body = client.get_bytes(path)
                except Exception:  # noqa: BLE001 - counting any failure
                    read_failures += 1
                    continue
                assert body.decode("utf-8") == text_for(path)
            assert read_failures == 0
            stats = client.stats()["cluster"]
            assert stats["replica_failovers"] > 0  # routing did the work

            # Phase 3: rejoin and converge via anti-entropy.
            cluster.rejoin(victim)
            assert not cluster.converged()  # the victim missed writes
            rounds = 0
            for _ in range(3):  # bounded: must converge within 3 rounds
                for node in cluster.nodes:
                    node.anti_entropy_round()
                rounds += 1
                if cluster.converged():
                    break
            assert cluster.converged(), cluster.digests()
            assert rounds <= 2

            # Byte-identical stores per shard, not just digest-identical.
            for shard in cluster.cluster_map.shards:
                replicas = [
                    cluster.nodes[cluster.addresses.index(address)]
                    for address in shard.replicas
                ]
                entries = [
                    node.store.entries_for_shard(cluster.cluster_map, shard.name)
                    for node in replicas
                ]
                assert entries[0] == entries[1]

            # The rejoined replica now answers for writes it missed.
            rejoined_docs = [
                path for path in DOCS[12:]
                if cluster.addresses[victim]
                in cluster.cluster_map.replicas_for(path)
            ]
            assert rejoined_docs  # the victim owns some late documents
            from repro.metaserver import http_get

            for path in rejoined_docs:
                body = http_get(f"http://{cluster.addresses[victim]}{path}")
                assert body.decode("utf-8") == text_for(path)
        finally:
            cluster.stop()


class TestFlakyReplica:
    def test_seeded_5xx_replica_never_breaks_quorum_or_reads(self):
        plan = ServerFaultPlan(seed=CHAOS_SEED, error=0.4)
        cluster = Cluster3x2(flaky_plan=plan)
        try:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(),
                write_quorum=1, origin="chaos-flaky",
            )
            for path in DOCS:
                assert client.publish(path, text_for(path)).ok
            for path in DOCS:
                assert client.get_bytes(path).decode("utf-8") == text_for(path)
            # The plan really fired: deterministic count for this seed.
            assert plan.total_injected > 0
            # And the whole run is reproducible: same seed, same schedule.
            replay = ServerFaultPlan(seed=CHAOS_SEED, error=0.4)
            for _ in range(plan.operations):
                replay.decide()
            assert [e.kind for e in replay.injected] == [
                e.kind for e in plan.injected
            ]
        finally:
            cluster.stop()

    def test_partitioned_peer_heals_after_rounds(self):
        """Divergence created behind a partition heals when it lifts."""
        cluster = Cluster3x2()
        try:
            client = ClusterClient(
                cluster.cluster_map, client=fast_client(),
                write_quorum=1, origin="chaos-partition",
            )
            victim = 3
            cluster.kill(victim)
            for path in DOCS[:8]:
                client.publish(path, text_for(path))
            # Partitioned anti-entropy degrades but does not raise.
            survivor = cluster.nodes[victim ^ 1]  # its shard peer
            report = survivor.anti_entropy_round()
            assert report["errors"] >= 0  # never raises
            cluster.rejoin(victim)
            for _ in range(2):
                for node in cluster.nodes:
                    node.anti_entropy_round()
            assert cluster.converged(), cluster.digests()
        finally:
            cluster.stop()
