"""Integration test for experiment E1: live schema evolution.

The format_evolution example as assertions: a schema document changes on
the metadata server while consumers are running; every (v1, v2) producer
x consumer combination keeps working.
"""

from repro import (
    EventBackbone,
    IOContext,
    MetadataClient,
    MetadataServer,
    SPARC_32,
    X86_64,
    XML2Wire,
)

TRACK_V1 = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="Track">
    <xsd:element name="flight" type="xsd:string" />
    <xsd:element name="alt" type="xsd:integer" />
  </xsd:complexType>
</xsd:schema>
"""

TRACK_V2 = TRACK_V1.replace(
    '<xsd:element name="alt" type="xsd:integer" />',
    '<xsd:element name="alt" type="xsd:integer" />\n'
    '    <xsd:element name="speed" type="xsd:double" />',
)


def test_all_four_version_combinations_interoperate():
    backbone = EventBackbone()
    with MetadataServer() as server:
        url = server.publish_schema("/track.xsd", TRACK_V1)
        client = MetadataClient(ttl=0)

        v1_sender = IOContext(SPARC_32)
        XML2Wire(v1_sender).register_url(url, client)
        v1_publisher = backbone.publisher("tracks", v1_sender)

        v1_consumer = IOContext(X86_64)
        XML2Wire(v1_consumer).register_url(url, client)
        v1_subscription = backbone.subscribe("tracks", v1_consumer, expect="Track")

        # v1 -> v1
        v1_publisher.publish("Track", {"flight": "A", "alt": 1})
        assert v1_subscription.next(timeout=5).values == {"flight": "A", "alt": 1}

        # Evolve the document in place.
        server.publish_schema("/track.xsd", TRACK_V2)

        v2_sender = IOContext(X86_64)
        XML2Wire(v2_sender).register_url(url, client)
        v2_publisher = backbone.publisher("tracks", v2_sender)

        # v2 -> v1: extra field dropped.
        v2_publisher.publish("Track", {"flight": "B", "alt": 2, "speed": 99.0})
        assert v1_subscription.next(timeout=5).values == {"flight": "B", "alt": 2}

        # The v2 consumer subscribes after record B so its first event
        # is record C below.
        v2_consumer = IOContext(SPARC_32)
        XML2Wire(v2_consumer).register_url(url, client)
        v2_subscription = backbone.subscribe("tracks", v2_consumer, expect="Track")

        # v2 -> v2: full record.
        v2_publisher.publish("Track", {"flight": "C", "alt": 3, "speed": 100.0})
        assert v2_subscription.next(timeout=5).values == {
            "flight": "C", "alt": 3, "speed": 100.0,
        }

        # v1 -> v2: missing field defaulted.
        v1_publisher.publish("Track", {"flight": "D", "alt": 4})
        assert v2_subscription.next(timeout=5).values == {
            "flight": "D", "alt": 4, "speed": 0.0,
        }


def test_fresh_discovery_sees_new_version_only_after_cache_expiry():
    with MetadataServer() as server:
        url = server.publish_schema("/track.xsd", TRACK_V1)
        cached_client = MetadataClient(ttl=3600)
        first = cached_client.get_schema(url)
        assert "speed" not in first.complex_type("Track").element_names()

        server.publish_schema("/track.xsd", TRACK_V2)
        # Cached: still v1.
        stale = cached_client.get_schema(url)
        assert "speed" not in stale.complex_type("Track").element_names()
        # Invalidate (or wait out the TTL): v2 appears.
        cached_client.invalidate(url)
        fresh = cached_client.get_schema(url)
        assert "speed" in fresh.complex_type("Track").element_names()
