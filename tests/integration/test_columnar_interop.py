"""Cross-plane columnar interop: mixed batch/per-record traffic.

One channel carries per-record data messages and columnar batch frames
interleaved; the receiving side — on the *other* plane — must hand back
the records in exactly the order they were sent, whichever frame type
carried them.  A receiver that predates the batch frame type (modeled
by the per-record ``decode`` API, the only one that existed before)
must reject kind-4 frames with a typed :class:`DecodeError`, not
misparse them.
"""

import asyncio
import threading

import pytest

from repro import aio
from repro.errors import DecodeError
from repro.core.xml2wire import XML2Wire
from repro.pbio.context import HEADER_SIZE, KIND_BATCH, KIND_FORMAT, IOContext
from repro.transport import connect as sync_connect
from repro.transport import listen as sync_listen
from repro.transport.connection import RecordConnection
from repro.workloads import AirlineWorkload, ASDOFF_B_SCHEMA


def make_sender_context():
    context = IOContext()
    XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
    return context, context.lookup_format("ASDOffEvent")


def mixed_traffic():
    """(kind, payload) steps: singles and batches interleaved."""
    workload = AirlineWorkload(seed=11)
    return [
        ("single", workload.record_b()),
        ("batch", workload.batch_b(5)),
        ("single", workload.record_b(eta_count=1)),
        ("batch", workload.batch_b(3, eta_count=0)),
        ("single", workload.record_b(eta_count=4)),
    ]


def flatten(steps):
    ordered = []
    for kind, payload in steps:
        if kind == "single":
            ordered.append(payload)
        else:
            ordered.extend(payload)
    return ordered


class TestMixedTrafficAcrossPlanes:
    def test_threaded_sender_async_receiver(self, arun):
        steps = mixed_traffic()
        expected = flatten(steps)

        async def scenario():
            listener = await aio.listen()
            address = listener.address

            def send_all():
                context, fmt = make_sender_context()
                channel = sync_connect(*address)
                connection = RecordConnection(context, channel)
                for kind, payload in steps:
                    if kind == "single":
                        connection.send(fmt, payload)
                    else:
                        connection.send_batch(fmt, payload)
                channel.close()

            sender = threading.Thread(target=send_all)
            sender.start()
            server = await listener.accept(timeout=5)
            receiver = IOContext()
            records = []
            while len(records) < len(expected):
                message = await server.recv(timeout=5)
                kind, _, _, length, _ = IOContext.parse_header(message)
                if kind == KIND_FORMAT:
                    receiver.learn_format(
                        message[HEADER_SIZE:HEADER_SIZE + length]
                    )
                elif kind == KIND_BATCH:
                    records.extend(receiver.decode_batch(message))
                else:
                    records.append(receiver.decode(message).values)
            sender.join(timeout=5)
            await server.close()
            await listener.close()
            return records

        assert arun(scenario()) == expected

    def test_async_sender_threaded_receiver(self, arun):
        steps = mixed_traffic()
        expected = flatten(steps)
        listener = sync_listen()
        address = listener.address
        received = []

        def receive_all():
            channel = listener.accept(timeout=5)
            connection = RecordConnection(IOContext(), channel)
            for _ in range(len(expected)):
                received.append(connection.recv(timeout=5).values)
            assert connection.batches_received == 2
            channel.close()

        consumer = threading.Thread(target=receive_all)
        consumer.start()

        async def send_all():
            context, fmt = make_sender_context()
            channel = await aio.connect(*address)
            await channel.send(context.format_message(fmt))
            for kind, payload in steps:
                if kind == "single":
                    await channel.send(context.encode(fmt, payload))
                else:
                    await channel.send_batch(
                        context.encode_batch_iov(fmt, payload)
                    )
            await channel.flush()
            # Hold the connection until the reader drains everything.
            await asyncio.sleep(0)
            while consumer.is_alive():
                await asyncio.sleep(0.02)
            await channel.close()

        arun(send_all())
        consumer.join(timeout=5)
        listener.close()
        assert received == expected


class TestPrePR7Rejection:
    """The per-record decode API — all a pre-batch receiver has — must
    reject the new frame type as a typed error, not misparse it."""

    def test_decode_rejects_batch_frame(self):
        context, fmt = make_sender_context()
        records = AirlineWorkload(seed=11).batch_b(4)
        message = context.encode_batch(fmt, records)
        receiver = IOContext()
        receiver.learn_format(fmt.to_wire_metadata())
        with pytest.raises(DecodeError) as excinfo:
            receiver.decode(message)
        assert "message kind 4" in str(excinfo.value)
        # The error is per-message: the same receiver still decodes
        # ordinary data messages afterwards.
        single = AirlineWorkload(seed=11).record_b()
        decoded = receiver.decode(context.encode(fmt, single))
        assert decoded.values == single

    def test_decode_view_rejects_batch_frame(self):
        context, fmt = make_sender_context()
        message = context.encode_batch(
            fmt, AirlineWorkload(seed=11).batch_b(2)
        )
        receiver = IOContext()
        receiver.learn_format(fmt.to_wire_metadata())
        with pytest.raises(DecodeError):
            receiver.decode_view(message)

    def test_batch_api_rejects_data_frame(self):
        """The mirror image: decode_batch on a per-record frame is a
        typed error too."""
        context, fmt = make_sender_context()
        single = AirlineWorkload(seed=11).record_b()
        message = context.encode(fmt, single)
        receiver = IOContext()
        receiver.learn_format(fmt.to_wire_metadata())
        with pytest.raises(DecodeError) as excinfo:
            receiver.decode_batch(message)
        assert "expected a batch message" in str(excinfo.value)
