"""Failure injection: every component must fail loudly, never silently.

Corruption, truncation, dead peers and dead infrastructure are the
failure modes the paper's fault-tolerance story (§3.3) revolves around.
These tests inject each and assert the library surfaces a typed error
(or degrades along the documented fallback path) rather than returning
garbage or hanging.
"""

import threading

import pytest

from repro import (
    CompiledSource,
    DiscoveryChain,
    IOContext,
    MetadataClient,
    MetadataServer,
    RecordConnection,
    SPARC_32,
    URLSource,
    X86_64,
    XML2Wire,
    connect,
    listen,
)
from repro.errors import ChannelClosedError, DecodeError, DiscoveryError, ReproError
from repro.events.remote import BrokerServer, RemoteBackboneClient
from repro.pbio import IOField
from repro.pbio.context import HEADER_SIZE
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload


@pytest.fixture
def message_and_contexts():
    sender = IOContext(SPARC_32)
    XML2Wire(sender).register_schema(ASDOFF_B_SCHEMA)
    fmt = sender.lookup_format("ASDOffEvent")
    record = AirlineWorkload(seed=77).record_b()
    message = sender.encode(fmt, record)
    receiver = IOContext(X86_64)
    receiver.learn_format(fmt.to_wire_metadata())
    return message, receiver, record


class TestMessageCorruption:
    def test_every_truncation_point_raises(self, message_and_contexts):
        message, receiver, _ = message_and_contexts
        for cut in range(0, len(message), 7):
            with pytest.raises(ReproError):
                receiver.decode(message[:cut])

    def test_header_kind_corruption_raises(self, message_and_contexts):
        message, receiver, _ = message_and_contexts
        broken = bytes([0xEE]) + message[1:]
        with pytest.raises(DecodeError):
            receiver.decode(broken)

    def test_header_length_inflation_raises(self, message_and_contexts):
        message, receiver, _ = message_and_contexts
        broken = bytearray(message)
        broken[4:8] = (2**31).to_bytes(4, "big")
        with pytest.raises(DecodeError, match="truncated"):
            receiver.decode(bytes(broken))

    def test_format_id_corruption_raises_unknown(self, message_and_contexts):
        message, receiver, _ = message_and_contexts
        broken = bytearray(message)
        broken[8] ^= 0xFF
        with pytest.raises(DecodeError, match="unknown format id"):
            receiver.decode(bytes(broken))

    def test_string_offset_out_of_bounds_raises(self, message_and_contexts):
        message, receiver, _ = message_and_contexts
        broken = bytearray(message)
        # The first pointer slot of the SPARC record sits right after the
        # header; point it far outside the payload.
        broken[HEADER_SIZE : HEADER_SIZE + 4] = (10**6).to_bytes(4, "big")
        with pytest.raises(DecodeError, match="corrupt"):
            receiver.decode(bytes(broken))

    def test_metadata_corruption_raises(self):
        sender = IOContext(SPARC_32)
        XML2Wire(sender).register_schema(ASDOFF_B_SCHEMA)
        metadata = sender.lookup_format("ASDOffEvent").to_wire_metadata()
        receiver = IOContext(X86_64)
        for cut in range(4, len(metadata) - 1, 11):
            with pytest.raises(DecodeError):
                receiver.learn_format(metadata[:cut])


class TestDeadPeers:
    def test_peer_death_mid_stream_raises_channel_closed(self):
        listener = listen()
        host, port = listener.address

        def server_side():
            context = IOContext(SPARC_32)
            XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
            connection = RecordConnection(context, listener.accept(timeout=10))
            connection.send("ASDOffEvent", AirlineWorkload(seed=1).record_b())
            connection.close()  # dies after one record

        thread = threading.Thread(target=server_side)
        thread.start()
        client = RecordConnection(IOContext(X86_64), connect(host, port))
        client.recv(timeout=10)  # the one record arrives
        with pytest.raises(ChannelClosedError):
            client.recv(timeout=10)
        thread.join(timeout=10)
        client.close()
        listener.close()

    def test_broker_death_raises_on_client(self):
        broker = BrokerServer().start()
        host, port = broker.address
        client = RemoteBackboneClient.connect(host, port, IOContext(X86_64))
        client.subscribe("s")
        broker.stop()
        with pytest.raises((ChannelClosedError, ReproError)):
            # Either the close is seen immediately or recv times out.
            client.next_event(timeout=1.0)
        client.close()


class TestDeadInfrastructure:
    def test_metadata_server_death_between_fetches(self):
        server = MetadataServer().start()
        url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
        uncached = MetadataClient(ttl=0, timeout=0.3)
        uncached.get_schema(url)
        server.stop()
        with pytest.raises(DiscoveryError):
            uncached.get_schema(url)

    def test_discovery_chain_survives_server_death(self):
        server = MetadataServer().start()
        url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
        server.stop()
        chain = DiscoveryChain(
            [
                URLSource(url, MetadataClient(timeout=0.3)),
                CompiledSource(ASDOFF_B_SCHEMA),
            ]
        )
        result = chain.discover()
        assert result.degraded
        # The degraded schema still registers and communicates.
        context = IOContext(SPARC_32)
        formats = XML2Wire(context).register_schema(result.schema)
        assert formats[0].record_length == 52

    def test_half_written_archive_detected(self, tmp_path):
        from repro.pbio.iofile import IOFileWriter, load_records

        path = tmp_path / "crash.pbio"
        context = IOContext(SPARC_32)
        context.register_format("tick", [IOField("v", "integer", 4, 0)])
        with IOFileWriter(path, context) as writer:
            for i in range(10):
                writer.write("tick", {"v": i})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])  # simulated crash mid-write
        with pytest.raises(DecodeError, match="truncated"):
            load_records(path)


class TestResourceSafety:
    def test_decode_never_allocates_from_hostile_length(self, message_and_contexts):
        """A 4 GiB frame-length prefix from a desynchronized stream must
        be rejected before allocation (the framing layer's cap)."""
        from repro.errors import WireError
        from repro.wire.framing import FrameDecoder

        decoder = FrameDecoder()
        decoder.feed(b"\xff\xff\xff\xf0" + b"junk")
        with pytest.raises(WireError, match="exceeds limit"):
            list(decoder.messages())

    def test_subscription_cancel_releases_blocked_thread(self):
        from repro.events import EventBackbone

        backbone = EventBackbone()
        subscription = backbone.subscribe("s", IOContext(X86_64))
        finished = []

        def blocked():
            try:
                subscription.next(timeout=30)
            except ReproError:
                finished.append(True)

        thread = threading.Thread(target=blocked)
        thread.start()
        subscription.cancel()
        thread.join(timeout=5)
        assert finished == [True]
