"""Cross-plane parity matrix: every client/server pairing, traced or not.

The wire contract says plane is an implementation detail: a threaded
client against an async server (and vice versa) must exchange the same
frames, decode the same records, and propagate the same trace context
as same-plane pairs.  The final test is the PR's acceptance criterion:
after the matrix runs, ``/metrics`` on BOTH metadata servers reports
nonzero frame, encode, and request-latency series.
"""

import asyncio
import threading
import time

import pytest

from repro import aio
from repro.metaserver import MetadataClient, MetadataServer
from repro.metaserver.client import http_get
from repro.obs import TraceContext, extract, get_tracer, inject, set_wire_tracing
from repro.pbio.context import HEADER_SIZE, IOContext
from repro.transport import connect as sync_connect
from repro.transport import listen as sync_listen
from repro.workloads import ASDOFF_A_SCHEMA

from tests.golden import vectors

PLANES = ("threaded", "async")
TRACING = (False, True)


def sender_messages(tracing):
    """(metadata message, data message, expected trace) for one exchange."""
    context, fmt, record = vectors.build("asdoff_a")
    meta = context.format_message(fmt)
    data = context.encode(fmt, record)
    if tracing:
        set_wire_tracing(True)
        with get_tracer().start_span("publish") as span:
            data = inject(data)
        return meta, data, span.context(), record
    return meta, data, None, record


def assert_exchange(meta, data, expected_trace, record):
    """Receiver-side checks, identical for every matrix cell."""
    message, trace = extract(data)
    assert trace == expected_trace
    receiver = IOContext()
    _, _, _, length, _ = receiver.parse_header(meta)
    receiver.learn_format(meta[HEADER_SIZE:HEADER_SIZE + length])
    decoded = receiver.decode(message)
    assert decoded["fltNum"] == record["fltNum"]
    assert decoded["dest"] == record["dest"]


def run_exchange(client_plane, server_plane, tracing, arun):
    """One matrix cell: client sends metadata + one record to the server."""
    if client_plane == "threaded" and server_plane == "threaded":
        listener = sync_listen()
        received = {}

        def serve():
            server = listener.accept(timeout=5)
            received["meta"] = server.recv(timeout=5)
            received["data"] = server.recv(timeout=5)
            server.close()

        thread = threading.Thread(target=serve)
        thread.start()
        meta, data, expected, record = sender_messages(tracing)
        client = sync_connect(*listener.address)
        client.send(meta)
        client.send(data)
        thread.join()
        client.close()
        listener.close()
        return received["meta"], received["data"], expected, record

    if client_plane == "async" and server_plane == "async":
        meta, data, expected, record = sender_messages(tracing)

        async def scenario():
            listener = await aio.listen()
            client_task = asyncio.ensure_future(aio.connect(*listener.address))
            server = await listener.accept(timeout=5)
            client = await client_task
            await client.send(meta)
            await client.send(data)
            got_meta = await server.recv(timeout=5)
            got_data = await server.recv(timeout=5)
            await client.close()
            await server.close()
            await listener.close()
            return got_meta, got_data

        got_meta, got_data = arun(scenario())
        return got_meta, got_data, expected, record

    if client_plane == "threaded" and server_plane == "async":
        meta, data, expected, record = sender_messages(tracing)

        async def scenario():
            listener = await aio.listen()

            def send_from_thread():
                client = sync_connect(*listener.address)
                client.send(meta)
                client.send(data)
                client.close()

            thread = threading.Thread(target=send_from_thread)
            thread.start()
            server = await listener.accept(timeout=5)
            got_meta = await server.recv(timeout=5)
            got_data = await server.recv(timeout=5)
            thread.join()
            await server.close()
            await listener.close()
            return got_meta, got_data

        got_meta, got_data = arun(scenario())
        return got_meta, got_data, expected, record

    # async client, threaded server
    listener = sync_listen()
    received = {}

    def serve():
        server = listener.accept(timeout=5)
        received["meta"] = server.recv(timeout=5)
        received["data"] = server.recv(timeout=5)
        server.close()

    thread = threading.Thread(target=serve)
    thread.start()
    meta, data, expected, record = sender_messages(tracing)

    async def scenario():
        client = await aio.connect(*listener.address)
        await client.send(meta)
        await client.send(data)
        await client.close()

    arun(scenario())
    thread.join()
    listener.close()
    return received["meta"], received["data"], expected, record


class TestRecordExchangeMatrix:
    @pytest.mark.parametrize("tracing", TRACING, ids=["plain", "traced"])
    @pytest.mark.parametrize("server_plane", PLANES)
    @pytest.mark.parametrize("client_plane", PLANES)
    def test_record_exchange(
        self, client_plane, server_plane, tracing, fresh_registry, arun
    ):
        meta, data, expected, record = run_exchange(
            client_plane, server_plane, tracing, arun
        )
        assert_exchange(meta, data, expected, record)


class TestMetadataServerMatrix:
    @pytest.mark.parametrize("server_plane", PLANES)
    @pytest.mark.parametrize("client_plane", PLANES)
    def test_schema_fetch(self, client_plane, server_plane, fresh_registry, arun):
        with aio.BackgroundLoop() as loop:
            if server_plane == "threaded":
                server = MetadataServer().start()
                stop = server.stop
            else:
                server = loop.run(aio.AsyncMetadataServer().start())
                stop = lambda: loop.run(server.stop())  # noqa: E731
            server.publish_schema("/schemas/asdoff.xsd", ASDOFF_A_SCHEMA)
            url = server.url_for("/schemas/asdoff.xsd")
            try:
                if client_plane == "threaded":
                    body = MetadataClient().get(url).body
                else:
                    async def fetch():
                        async with aio.AsyncMetadataClient() as client:
                            return await client.get(url)

                    body = arun(fetch())
            finally:
                stop()
        assert body.decode("utf-8") == ASDOFF_A_SCHEMA

        snap = fresh_registry.snapshot()
        plane_key = (("plane", server_plane),)
        assert snap["metaserver_request_seconds"][plane_key].count >= 1


class TestMetricsEndpointAcceptance:
    def test_both_planes_expose_nonzero_series(self, fresh_registry, arun):
        # Drive the full interop matrix against the shared registry…
        for client_plane in PLANES:
            for server_plane in PLANES:
                meta, data, expected, record = run_exchange(
                    client_plane, server_plane, False, arun
                )
                assert_exchange(meta, data, expected, record)

        # …then serve /metrics from BOTH planes out of one catalog.
        with aio.BackgroundLoop() as loop:
            threaded = MetadataServer().start()
            threaded.publish_schema("/schemas/asdoff.xsd", ASDOFF_A_SCHEMA)
            async_server = loop.run(
                aio.AsyncMetadataServer(catalog=threaded.catalog).start()
            )
            try:
                http_get(threaded.url_for("/schemas/asdoff.xsd"))
                http_get(async_server.url_for("/schemas/asdoff.xsd"))
                # The async server records its request observation *after*
                # writing the response, so an immediate exposition can
                # legitimately miss it — poll briefly for quiescence.
                marker = 'metaserver_request_seconds_count{plane="async"}'
                deadline = time.monotonic() + 5.0
                while True:
                    threaded_metrics = http_get(
                        threaded.url_for("/metrics")
                    ).decode()
                    async_metrics = http_get(
                        async_server.url_for("/metrics")
                    ).decode()
                    if marker in async_metrics and marker in threaded_metrics:
                        break
                    if time.monotonic() >= deadline:
                        break
                    time.sleep(0.02)
            finally:
                threaded.stop()
                loop.run(async_server.stop())

        for exposition in (threaded_metrics, async_metrics):
            # Frames flowed on both transport planes…
            assert 'transport_frames_total{plane="threaded",direction="send"}' in exposition
            assert 'transport_frames_total{plane="async",direction="send"}' in exposition
            # …records were encoded…
            assert 'pbio_encode_total{format="ASDOffEvent"}' in exposition
            # …and both servers timed requests.
            assert 'metaserver_request_seconds_count{plane="threaded"}' in exposition
            assert 'metaserver_request_seconds_count{plane="async"}' in exposition
            for line in exposition.splitlines():
                if line.startswith("transport_frames_total") or \
                        line.startswith("pbio_encode_total") or \
                        line.startswith("metaserver_request_seconds_count"):
                    assert float(line.rsplit(" ", 1)[1]) > 0, line
