"""End-to-end degraded operation: the paper's §3.3 story under real faults.

Remote discovery is primary; compiled-in metadata is the fallback when
"a broken network link or hardware failure" strikes.  These tests kill
and resurrect a real metadata server mid-run and assert the chain
degrades and recovers, and that a flaky-but-alive server is absorbed by
the retry layer without the caller ever seeing an error.
"""

import time

import pytest

from repro import (
    CompiledSource,
    DiscoveryChain,
    FlakyMetadataServer,
    IOContext,
    MetadataClient,
    MetadataServer,
    RetryPolicy,
    SPARC_32,
    URLSource,
    XML2Wire,
)
from repro.faults import ServerFaultPlan
from repro.workloads import ASDOFF_B_SCHEMA

SCHEMA_PATH = "/schemas/asdoff.xsd"


def registers(result):
    """The discovered schema must actually register and lay out."""
    formats = XML2Wire(IOContext(SPARC_32)).register_schema(result.schema)
    assert formats[0].record_length == 52


class TestKillAndRecover:
    def test_degrade_then_recover_when_server_returns(self):
        server = MetadataServer().start()
        url = server.publish_schema(SCHEMA_PATH, ASDOFF_B_SCHEMA)
        host, port = server.address
        client = MetadataClient(
            ttl=0,
            timeout=0.5,
            retry=RetryPolicy(max_attempts=2, base_delay=0.005),
            sleep=lambda s: None,
        )
        remote = URLSource(url, client)
        chain = DiscoveryChain(
            [remote, CompiledSource(ASDOFF_B_SCHEMA)],
            demote_after=2,
            demotion_period=0.2,
        )

        # Phase 1: healthy — remote discovery wins.
        result = chain.discover()
        assert result.source == f"url:{url}"
        assert not result.degraded
        registers(result)

        # Phase 2: the server dies mid-run — every discovery still
        # succeeds, degraded to the compiled-in fallback.
        server.stop()
        for _ in range(3):
            result = chain.discover()
            assert result.source == "compiled:builtin"
            registers(result)
        assert chain.health(remote).consecutive_failures >= 2

        # Phase 3: the server comes back on the same address; once the
        # demotion lapses, remote discovery takes over again.
        revived = MetadataServer(host, port).start()
        try:
            revived.publish_schema(SCHEMA_PATH, ASDOFF_B_SCHEMA)
            time.sleep(0.25)  # let the demotion period expire
            result = chain.discover()
            assert result.source == f"url:{url}"
            assert not result.degraded
            registers(result)
            assert chain.health(remote).consecutive_failures == 0
        finally:
            revived.stop()

    def test_fully_down_degrades_within_retry_budget(self):
        server = MetadataServer().start()
        url = server.publish_schema(SCHEMA_PATH, ASDOFF_B_SCHEMA)
        server.stop()
        client = MetadataClient(
            ttl=0,
            timeout=0.5,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, cap_delay=0.05),
        )
        chain = DiscoveryChain(
            [URLSource(url, client), CompiledSource(ASDOFF_B_SCHEMA)]
        )
        started = time.monotonic()
        result = chain.discover()
        elapsed = time.monotonic() - started
        assert result.source == "compiled:builtin"
        assert result.degraded
        # Bounded: retries against a refused connection are fast; the
        # whole degraded discovery must finish well under a second.
        assert elapsed < 1.0
        registers(result)

    def test_stale_schema_bridges_an_outage(self):
        server = MetadataServer().start()
        url = server.publish_schema(SCHEMA_PATH, ASDOFF_B_SCHEMA)

        class Clock:
            now = 0.0

            def __call__(self):
                return Clock.now

        clock = Clock()
        client = MetadataClient(
            ttl=5,
            timeout=0.5,
            retry=RetryPolicy(max_attempts=2, base_delay=0.005),
            sleep=lambda s: None,
            clock=clock,
        )
        remote = URLSource(url, client)
        chain = DiscoveryChain([remote, CompiledSource(ASDOFF_B_SCHEMA)])
        assert not chain.discover().stale

        server.stop()
        Clock.now += 10  # cache entry expires during the outage
        result = chain.discover()
        # Served from the expired cache: still the *remote* document,
        # flagged both stale and degraded.
        assert result.source == f"url:{url}"
        assert result.stale
        assert result.degraded
        assert result.report.attempts[0].stale
        registers(result)
        assert client.stale_serves == 1


class TestFlakyServerAbsorbed:
    def test_hundred_discoveries_zero_errors_at_fifty_percent_failure(self):
        plan = ServerFaultPlan(seed=2026, error=0.5)
        with FlakyMetadataServer(plan=plan) as server:
            url = server.publish_schema(SCHEMA_PATH, ASDOFF_B_SCHEMA)
            client = MetadataClient(
                ttl=0,
                timeout=2.0,
                retry=RetryPolicy(max_attempts=6, base_delay=0.001, cap_delay=0.002),
                breaker_threshold=50,  # keep the breaker out of this test
                sleep=lambda s: None,
            )
            chain = DiscoveryChain(
                [URLSource(url, client), CompiledSource(ASDOFF_B_SCHEMA)]
            )
            sources = [chain.discover().source for _ in range(100)]
        assert len(sources) == 100  # no exceptions escaped
        assert server.faults_injected > 0
        assert client.retries > 0
        # With six attempts against 50% failure, essentially every
        # discovery lands on the remote source.
        assert sources.count(f"url:{url}") >= 95
