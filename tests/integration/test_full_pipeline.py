"""Integration tests: the full discovery → binding → marshaling pipeline
across subsystems, mirroring the examples."""

import threading

import pytest

from repro import (
    CompiledSource,
    DiscoveryChain,
    EventBackbone,
    IOContext,
    MetadataClient,
    MetadataServer,
    RecordConnection,
    SPARC_32,
    URLSource,
    X86_32,
    X86_64,
    XML2Wire,
    bind,
    connect,
    listen,
)
from repro.workloads import (
    ASDOFF_B_SCHEMA,
    AirlineWorkload,
    MiningWorkload,
    WeatherWorkload,
)


class TestRemoteDiscoveryPipeline:
    def test_url_discovery_to_cross_arch_exchange(self):
        """Schema on a live HTTP server -> xml2wire on both endpoints ->
        NDR exchange between different architectures."""
        with MetadataServer() as server:
            url = server.publish_schema("/schemas/asdoff.xsd", ASDOFF_B_SCHEMA)
            client = MetadataClient()

            sender = IOContext(SPARC_32)
            XML2Wire(sender).register_url(url, client)
            receiver = IOContext(X86_64)
            XML2Wire(receiver).register_url(url, client)

            record = AirlineWorkload(seed=9).record_b()
            message = sender.encode("ASDOffEvent", record)
            receiver.learn_format(
                sender.lookup_format("ASDOffEvent").to_wire_metadata()
            )
            assert receiver.decode(message, expect="ASDOffEvent").values == record

    def test_discovery_chain_feeds_xml2wire(self):
        with MetadataServer() as server:
            dead_url = server.url_for("/gone.xsd")
        chain = DiscoveryChain(
            [
                URLSource(dead_url, MetadataClient(timeout=0.3)),
                CompiledSource(ASDOFF_B_SCHEMA, label="shipped-asdoff"),
            ]
        )
        result = chain.discover()
        assert result.degraded
        context = IOContext(SPARC_32)
        formats = XML2Wire(context).register_schema(result.schema)
        assert formats[0].record_length == 52

    def test_format_resolution_over_http(self):
        """A receiver resolves an unknown wire format id through the
        metadata server's /formats tree instead of in-band traffic."""
        from repro.pbio import FormatServer

        format_server = FormatServer()
        with MetadataServer() as server:
            server.attach_format_server(format_server)
            sender = IOContext(SPARC_32, format_server=format_server)
            XML2Wire(sender).register_schema(ASDOFF_B_SCHEMA)
            record = AirlineWorkload(seed=2).record_b()
            message = sender.encode("ASDOffEvent", record)

            receiver = IOContext(X86_64)
            _, _, _, _, format_id = IOContext.parse_header(message)
            host, port = server.address
            fetched = MetadataClient().get_format(f"http://{host}:{port}", format_id)
            receiver.learn_format(fetched.to_wire_metadata())
            assert receiver.decode(message).values == record


class TestBackboneWithDiscovery:
    def test_three_stream_heterogeneous_ois(self):
        """The airline_ois example as a test: three capture points on
        three architectures, one subscriber decoding all of them."""
        backbone = EventBackbone()
        subscriber_context = IOContext(X86_64)
        subscription = backbone.subscribe("*", subscriber_context)

        airline = AirlineWorkload(seed=1)
        weather = WeatherWorkload(seed=2)
        mining = MiningWorkload(seed=3)
        setups = [
            ("flights", ASDOFF_B_SCHEMA, "ASDOffEvent", airline.record_b, SPARC_32),
            ("weather", WeatherWorkload.schema, "SurfaceObservation", weather.record, X86_32),
            ("mining", MiningWorkload.schema, "RuleDiscovery", mining.record, X86_64),
        ]
        expected = []
        for stream, schema, format_name, make_record, arch in setups:
            context = IOContext(arch)
            XML2Wire(context).register_schema(schema)
            publisher = backbone.publisher(stream, context)
            for _ in range(5):
                record = make_record()
                expected.append((stream, record))
                publisher.publish(format_name, record)

        received = [subscription.next(timeout=5) for _ in range(15)]
        got = [(event.stream, event.values) for event in received]
        assert sorted(got, key=str) == sorted(expected, key=str)

    def test_bound_format_through_backbone(self):
        backbone = EventBackbone()
        context = IOContext(SPARC_32)
        XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
        token = bind(context, "ASDOffEvent")
        record = AirlineWorkload(seed=4).record_b()
        token.check(record)
        subscription = backbone.subscribe("s", IOContext(X86_64))
        backbone.publisher("s", context).publish(token.format, record)
        assert subscription.next(timeout=5).values == record


class TestTCPPipeline:
    def test_bidirectional_typed_exchange_over_tcp(self):
        listener = listen()
        host, port = listener.address
        server_done = {}

        def server_side():
            context = IOContext(SPARC_32)
            XML2Wire(context).register_schema(MiningWorkload.schema)
            connection = RecordConnection(context, listener.accept(timeout=10))
            workload = MiningWorkload(seed=5)
            for _ in range(10):
                connection.send("RuleDiscovery", workload.record())
            # Then receive an ack record from the client.
            ack = connection.recv(timeout=10)
            server_done["ack"] = ack.values
            connection.close()

        thread = threading.Thread(target=server_side)
        thread.start()
        client_context = IOContext(X86_64)
        from repro.pbio import IOField

        client_context.register_format(
            "ack", [IOField("seen", "integer", 4, 0)]
        )
        connection = RecordConnection(client_context, connect(host, port))
        records = [connection.recv(timeout=10) for _ in range(10)]
        assert len({r.values["rule_id"] for r in records}) == 10
        connection.send("ack", {"seen": len(records)})
        thread.join(timeout=10)
        connection.close()
        listener.close()
        assert server_done["ack"] == {"seen": 10}

    def test_converter_amortization_over_connection(self):
        listener = listen()
        host, port = listener.address

        def server_side():
            context = IOContext(SPARC_32)
            XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
            connection = RecordConnection(context, listener.accept(timeout=10))
            workload = AirlineWorkload(seed=6)
            for _ in range(100):
                connection.send("ASDOffEvent", workload.record_b())
            connection.close()

        thread = threading.Thread(target=server_side)
        thread.start()
        client_context = IOContext(X86_64)
        connection = RecordConnection(client_context, connect(host, port))
        for _ in range(100):
            connection.recv(timeout=10)
        thread.join(timeout=10)
        connection.close()
        listener.close()
        # One generated converter serves all 100 records.
        assert client_context.converter_builds == 1
