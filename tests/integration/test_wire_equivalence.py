"""Integration: all three wire formats agree on record semantics.

Whatever NDR round-trips, XDR and text XML must round-trip to the same
values (modulo nothing — the codecs share record shapes by design).
This pins down the benchmark harness's fairness: the three systems move
the *same* information.
"""

import pytest

from repro import IOContext, SPARC_32, X86_64, XDRCodec, XMLTextCodec, XML2Wire
from repro.wire import CDRCodec
from repro.workloads import (
    ASDOFF_B_SCHEMA,
    ASDOFF_CD_SCHEMA,
    AirlineWorkload,
    MiningWorkload,
    SyntheticWorkload,
    WeatherWorkload,
)

CASES = [
    ("asdoff_b", ASDOFF_B_SCHEMA, "ASDOffEvent",
     lambda: AirlineWorkload(seed=1).record_b()),
    ("asdoff_cd", ASDOFF_CD_SCHEMA, "threeASDOffs",
     lambda: AirlineWorkload(seed=1).record_cd()),
    ("weather", WeatherWorkload.schema, "SurfaceObservation",
     lambda: WeatherWorkload(seed=2).record()),
    ("mining", MiningWorkload.schema, "RuleDiscovery",
     lambda: MiningWorkload(seed=3).record()),
    ("synthetic", SyntheticWorkload(12).schema, "Synthetic",
     lambda: SyntheticWorkload(12).record()),
]


@pytest.mark.parametrize("name,schema,format_name,make_record", CASES,
                         ids=[c[0] for c in CASES])
class TestThreeWayEquivalence:
    def test_all_wire_formats_roundtrip_identically(
        self, name, schema, format_name, make_record
    ):
        record = make_record()
        sender = IOContext(SPARC_32)
        sender_fmt = XML2Wire(sender).register_schema(schema)
        fmt = sender.lookup_format(format_name)

        # NDR across architectures.
        receiver = IOContext(X86_64)
        receiver.learn_format(fmt.to_wire_metadata())
        ndr_values = receiver.decode(sender.encode(fmt, record)).values

        # XDR (canonical).
        xdr = XDRCodec(fmt)
        xdr_values = xdr.decode(xdr.encode(record))

        # CDR (reader-makes-right on byte order; sizes are the shared
        # IDL contract, so both ends use the same format metadata).
        cdr = CDRCodec(fmt)
        cdr_values = cdr.decode(cdr.encode(record))

        # Text XML.
        xml = XMLTextCodec(fmt)
        xml_values = xml.decode(xml.encode(record))

        assert ndr_values == xdr_values == cdr_values == xml_values == record

    def test_ndr_is_smallest_on_the_wire(
        self, name, schema, format_name, make_record
    ):
        """Size ordering (framing excluded): NDR <= XDR << XML, for
        mixed records with small fields.  For pure wide-numeric records
        XDR can tie NDR; it never beats it by more than padding."""
        record = make_record()
        sender = IOContext(SPARC_32)
        XML2Wire(sender).register_schema(schema)
        fmt = sender.lookup_format(format_name)
        ndr_size = len(sender.encode(fmt, record)) - 16
        xdr_size = len(XDRCodec(fmt).encode(record))
        xml_size = len(XMLTextCodec(fmt).encode(record))
        assert xml_size > xdr_size
        assert xml_size > 2 * ndr_size
