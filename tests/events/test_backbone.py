"""Unit tests for the event backbone."""

import threading

import pytest

from repro.arch import SPARC_32, X86_32, X86_64
from repro.errors import TransportError
from repro.events import EventBackbone
from repro.pbio import IOContext, IOField


def track_fields(arch):
    return [
        IOField("flight", "string", arch.pointer_size, 0),
        IOField("alt", "integer", 4, arch.pointer_size),
    ]


def make_publisher(backbone, stream, arch=SPARC_32):
    context = IOContext(arch)
    fmt = context.register_format("track", track_fields(arch))
    return backbone.publisher(stream, context), fmt


class TestPublishSubscribe:
    def test_single_stream_delivery(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("flights.asd", IOContext(X86_64))
        publisher, fmt = make_publisher(backbone, "flights.asd")
        publisher.publish(fmt, {"flight": "DL1", "alt": 31000})
        event = subscriber.next(timeout=5)
        assert event.stream == "flights.asd"
        assert event.values == {"flight": "DL1", "alt": 31000}

    def test_heterogeneous_publishers_one_subscriber(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("flights.*", IOContext(X86_64))
        pub_sparc, fmt_sparc = make_publisher(backbone, "flights.a", SPARC_32)
        pub_x86, fmt_x86 = make_publisher(backbone, "flights.b", X86_32)
        pub_sparc.publish(fmt_sparc, {"flight": "S1", "alt": 1})
        pub_x86.publish(fmt_x86, {"flight": "X1", "alt": 2})
        events = subscriber.drain(2, timeout=5)
        assert {e.values["flight"] for e in events} == {"S1", "X1"}

    def test_fanout_to_many_subscribers(self):
        backbone = EventBackbone()
        subscribers = [backbone.subscribe("s", IOContext(X86_64)) for _ in range(10)]
        publisher, fmt = make_publisher(backbone, "s")
        delivered = publisher.publish(fmt, {"flight": "F", "alt": 0})
        assert delivered == 10
        for subscriber in subscribers:
            assert subscriber.next(timeout=5).values["flight"] == "F"

    def test_no_subscribers_no_delivery(self):
        backbone = EventBackbone()
        publisher, fmt = make_publisher(backbone, "lonely")
        assert publisher.publish(fmt, {"flight": "F", "alt": 0}) == 0

    def test_format_pushed_once_per_stream(self):
        backbone = EventBackbone()
        backbone.subscribe("s", IOContext(X86_64))
        publisher, fmt = make_publisher(backbone, "s")
        for i in range(20):
            publisher.publish(fmt, {"flight": "F", "alt": i})
        stats = backbone.stats("s")
        assert stats.metadata_messages == 1
        assert stats.data_messages == 20


class TestLateJoin:
    def test_late_subscriber_gets_replayed_metadata(self):
        """The handheld-device case: metadata arrives from the broker's
        cache, so records decode without any publisher cooperation."""
        backbone = EventBackbone()
        publisher, fmt = make_publisher(backbone, "s")
        publisher.publish(fmt, {"flight": "EARLY", "alt": 1})  # nobody listening
        late = backbone.subscribe("s", IOContext(X86_64))
        publisher.publish(fmt, {"flight": "LATE", "alt": 2})
        event = late.next(timeout=5)
        assert event.values["flight"] == "LATE"

    def test_pattern_matches_future_streams(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("weather.*", IOContext(X86_64))
        publisher, fmt = make_publisher(backbone, "weather.atl")
        publisher.publish(fmt, {"flight": "n/a", "alt": 0})
        assert subscriber.next(timeout=5).stream == "weather.atl"

    def test_non_matching_stream_not_delivered(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("weather.*", IOContext(X86_64))
        publisher, fmt = make_publisher(backbone, "flights.x")
        publisher.publish(fmt, {"flight": "F", "alt": 0})
        with pytest.raises(TransportError, match="no event"):
            subscriber.next(timeout=0.05)


class TestSubscriptionLifecycle:
    def test_cancel_stops_delivery(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("s", IOContext(X86_64))
        subscriber.cancel()
        publisher, fmt = make_publisher(backbone, "s")
        assert publisher.publish(fmt, {"flight": "F", "alt": 0}) == 0

    def test_cancel_wakes_blocked_next(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("s", IOContext(X86_64))
        errors = []

        def wait_for_event():
            try:
                subscriber.next(timeout=5)
            except TransportError as exc:
                errors.append(str(exc))

        thread = threading.Thread(target=wait_for_event)
        thread.start()
        subscriber.cancel()
        thread.join(timeout=5)
        assert errors and "cancelled" in errors[0]

    def test_context_manager_cancels(self):
        backbone = EventBackbone()
        with backbone.subscribe("s", IOContext(X86_64)) as subscriber:
            pass
        publisher, fmt = make_publisher(backbone, "s")
        assert publisher.publish(fmt, {"flight": "F", "alt": 0}) == 0

    def test_double_cancel_harmless(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("s", IOContext(X86_64))
        subscriber.cancel()
        subscriber.cancel()


class TestEvolutionOnBackbone:
    def test_subscriber_projects_with_expect(self):
        backbone = EventBackbone()
        receiver = IOContext(X86_64)
        receiver.register_format("track", track_fields(X86_64))
        subscriber = backbone.subscribe("s", receiver, expect="track")
        context = IOContext(SPARC_32)
        v2 = context.register_format(
            "track",
            track_fields(SPARC_32) + [IOField("speed", "double", 8, 8)],
            record_length=16,
        )
        backbone.publisher("s", context).publish(
            v2, {"flight": "DL9", "alt": 100, "speed": 420.0}
        )
        assert subscriber.next(timeout=5).values == {"flight": "DL9", "alt": 100}


class TestIntrospection:
    def test_stream_listing_and_stats(self):
        backbone = EventBackbone()
        publisher, fmt = make_publisher(backbone, "s1")
        publisher.publish(fmt, {"flight": "F", "alt": 0})
        assert backbone.streams() == ["s1"]
        stats = backbone.stats("s1")
        assert stats.bytes_routed > 0
        assert stats.subscribers == 0

    def test_unknown_stream_stats_raises(self):
        with pytest.raises(TransportError, match="no stream"):
            EventBackbone().stats("nope")

    def test_metadata_url_advertisement(self):
        backbone = EventBackbone()
        publisher, _ = make_publisher(backbone, "s")
        publisher.advertise_metadata("http://meta/asdoff.xsd")
        assert backbone.metadata_url("s") == "http://meta/asdoff.xsd"
        assert backbone.metadata_url("unknown") is None

    def test_concurrent_publishers_thread_safe(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("s", IOContext(X86_64))
        publishers = [make_publisher(backbone, "s") for _ in range(4)]

        def blast(publisher_fmt):
            publisher, fmt = publisher_fmt
            for i in range(50):
                publisher.publish(fmt, {"flight": "T", "alt": i})

        threads = [threading.Thread(target=blast, args=(p,)) for p in publishers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        events = subscriber.drain(200, timeout=5)
        assert len(events) == 200
