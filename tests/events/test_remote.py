"""Integration tests for the networked event backbone."""

import pytest

from repro.arch import SPARC_32, X86_32, X86_64
from repro.errors import WireError
from repro.events.remote import (
    BrokerServer,
    RemoteBackboneClient,
    pack_envelope,
    unpack_envelope,
    OP_EVENT,
    OP_PUBLISH,
    OP_SUBSCRIBE,
)
from repro.pbio import IOContext, IOField


def track_fields(arch):
    return [
        IOField("flight", "string", arch.pointer_size, 0),
        IOField("alt", "integer", 4, arch.pointer_size),
    ]


def make_client(broker, arch, register=True):
    context = IOContext(arch)
    if register:
        context.register_format("track", track_fields(arch))
    host, port = broker.address
    return RemoteBackboneClient.connect(host, port, context)


@pytest.fixture
def broker():
    with BrokerServer() as running:
        yield running


class TestEnvelope:
    def test_roundtrip(self):
        message = pack_envelope(OP_PUBLISH, "flights.a", "http://x", b"\x01\x02")
        assert unpack_envelope(message) == (
            OP_PUBLISH, "flights.a", "http://x", b"\x01\x02",
        )

    def test_empty_fields(self):
        message = pack_envelope(OP_SUBSCRIBE, "")
        assert unpack_envelope(message) == (OP_SUBSCRIBE, "", "", b"")

    def test_malformed_rejected(self):
        with pytest.raises(WireError, match="malformed"):
            unpack_envelope(b"\x01")

    def test_unicode_stream_names(self):
        message = pack_envelope(OP_EVENT, "flüge.münchen")
        assert unpack_envelope(message)[1] == "flüge.münchen"


class TestPublishSubscribeOverTCP:
    def test_basic_delivery_across_architectures(self, broker):
        subscriber = make_client(broker, X86_64, register=False)
        subscriber.subscribe("flights.*")
        publisher_client = make_client(broker, SPARC_32)
        publisher = publisher_client.publisher("flights.atl")
        publisher.publish("track", {"flight": "DL1", "alt": 31000})
        event = subscriber.next_event(timeout=5)
        assert event.stream == "flights.atl"
        assert event.values == {"flight": "DL1", "alt": 31000}
        subscriber.close()
        publisher_client.close()

    def test_many_messages_in_order(self, broker):
        subscriber = make_client(broker, X86_64, register=False)
        subscriber.subscribe("s")
        publisher_client = make_client(broker, SPARC_32)
        publisher = publisher_client.publisher("s")
        for i in range(50):
            publisher.publish("track", {"flight": f"F{i}", "alt": i})
        alts = [subscriber.next_event(timeout=5).values["alt"] for i in range(50)]
        assert alts == list(range(50))
        subscriber.close()
        publisher_client.close()

    def test_multiple_subscribers_fanout(self, broker):
        subscribers = []
        for _ in range(5):
            client = make_client(broker, X86_32, register=False)
            client.subscribe("s")
            subscribers.append(client)
        publisher_client = make_client(broker, SPARC_32)
        publisher_client.publisher("s").publish("track", {"flight": "X", "alt": 1})
        for client in subscribers:
            assert client.next_event(timeout=5).values["flight"] == "X"
            client.close()
        publisher_client.close()

    def test_late_joiner_gets_metadata_replay(self, broker):
        publisher_client = make_client(broker, SPARC_32)
        publisher = publisher_client.publisher("s")
        publisher.publish("track", {"flight": "EARLY", "alt": 1})
        publisher_client.flush()  # EARLY is routed (and dropped) first

        late = make_client(broker, X86_64, register=False)
        late.subscribe("s")
        publisher.publish("track", {"flight": "LATE", "alt": 2})
        event = late.next_event(timeout=5)
        assert event.values["flight"] == "LATE"
        late.close()
        publisher_client.close()

    def test_pattern_filtering(self, broker):
        subscriber = make_client(broker, X86_64, register=False)
        subscriber.subscribe("weather.*")
        publisher_client = make_client(broker, SPARC_32)
        publisher_client.publisher("flights.x").publish(
            "track", {"flight": "NO", "alt": 0}
        )
        publisher_client.publisher("weather.atl").publish(
            "track", {"flight": "YES", "alt": 0}
        )
        publisher_client.flush()
        assert subscriber.next_event(timeout=5).values["flight"] == "YES"
        subscriber.close()
        publisher_client.close()

    def test_metadata_url_advertisement(self, broker):
        publisher_client = make_client(broker, SPARC_32)
        publisher = publisher_client.publisher("s")
        publisher.advertise_metadata("http://meta/track.xsd")
        import time

        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if broker.backbone.metadata_url("s") == "http://meta/track.xsd":
                break
            time.sleep(0.02)
        assert broker.backbone.metadata_url("s") == "http://meta/track.xsd"
        publisher_client.close()

    def test_expect_projection_over_tcp(self, broker):
        receiver = make_client(broker, X86_64, register=True)  # v1 'track'
        receiver.subscribe("s")
        sender_context = IOContext(SPARC_32)
        sender_context.register_format(
            "track",
            track_fields(SPARC_32) + [IOField("speed", "double", 8, 8)],
            record_length=16,
        )
        host, port = broker.address
        sender = RemoteBackboneClient.connect(host, port, sender_context)
        sender.publisher("s").publish(
            "track", {"flight": "DL9", "alt": 100, "speed": 400.0}
        )
        event = receiver.next_event(timeout=5, expect="track")
        assert event.values == {"flight": "DL9", "alt": 100}
        receiver.close()
        sender.close()


class TestBrokerLifecycle:
    def test_connections_counted(self, broker):
        clients = [make_client(broker, X86_64, register=False) for _ in range(3)]
        import time

        deadline = time.monotonic() + 5
        while time.monotonic() < deadline and broker.connections_served < 3:
            time.sleep(0.02)
        assert broker.connections_served == 3
        for client in clients:
            client.close()

    def test_disconnect_unsubscribes(self, broker):
        subscriber = make_client(broker, X86_64, register=False)
        subscriber.subscribe("s")
        publisher_client = make_client(broker, SPARC_32)
        publisher_client.publisher("s").publish("track", {"flight": "A", "alt": 0})
        subscriber.next_event(timeout=5)
        subscriber.close()
        import time

        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if broker.backbone.stats("s").subscribers == 0:
                break
            time.sleep(0.02)
        assert broker.backbone.stats("s").subscribers == 0
        publisher_client.close()

    def test_double_start_rejected(self):
        broker = BrokerServer()
        broker.start()
        try:
            with pytest.raises(Exception, match="already started"):
                broker.start()
        finally:
            broker.stop()

    def test_shared_backbone_bridges_local_and_remote(self, broker):
        """A local in-process subscriber sees events published by a
        remote TCP client, through the same backbone instance."""
        local = broker.backbone.subscribe("s", IOContext(X86_64))
        publisher_client = make_client(broker, SPARC_32)
        publisher_client.publisher("s").publish("track", {"flight": "MIX", "alt": 5})
        event = local.next(timeout=5)
        assert event.values["flight"] == "MIX"
        publisher_client.close()
