"""Unit tests for format scoping (paper §4.4)."""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.core.scoping import project_record, scope_complex_type, scope_schema
from repro.errors import SchemaError
from repro.events import EventBackbone
from repro.events.scoping import ScopedPublisher
from repro.pbio import IOContext
from repro.schema import parse_schema, schema_to_xml
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload


@pytest.fixture
def asdoff_schema():
    return parse_schema(ASDOFF_B_SCHEMA)


class TestScopeComplexType:
    def test_retains_requested_fields_in_order(self, asdoff_schema):
        ct = asdoff_schema.complex_type("ASDOffEvent")
        scoped = scope_complex_type(ct, ["fltNum", "org", "dest"])
        assert scoped.element_names() == ["fltNum", "org", "dest"]

    def test_dynamic_array_drags_length_field(self, asdoff_schema):
        ct = asdoff_schema.complex_type("ASDOffEvent")
        scoped = scope_complex_type(ct, ["eta"])
        assert scoped.element_names() == ["eta"]
        # eta_count is synthesized (not a declared element), so the
        # scoped type keeps the synthesized semantics.
        assert scoped.element("eta").occurs.length_field == "eta_count"

    def test_declared_length_field_pulled_in(self):
        schema = parse_schema(
            '<?xml version="1.0"?>'
            '<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">'
            '<xsd:complexType name="T">'
            '<xsd:element name="x" type="xsd:int"/>'
            '<xsd:element name="n" type="xsd:integer"/>'
            '<xsd:element name="data" type="xsd:double" maxOccurs="n"/>'
            "</xsd:complexType></xsd:schema>"
        )
        scoped = scope_complex_type(schema.complex_type("T"), ["data"])
        assert scoped.element_names() == ["n", "data"]

    def test_unknown_field_rejected(self, asdoff_schema):
        ct = asdoff_schema.complex_type("ASDOffEvent")
        with pytest.raises(SchemaError, match="unknown fields"):
            scope_complex_type(ct, ["bogus"])

    def test_empty_scope_rejected(self, asdoff_schema):
        ct = asdoff_schema.complex_type("ASDOffEvent")
        with pytest.raises(SchemaError, match="retains no fields"):
            scope_complex_type(ct, [])

    def test_rename(self, asdoff_schema):
        ct = asdoff_schema.complex_type("ASDOffEvent")
        scoped = scope_complex_type(ct, ["org"], name="PublicView")
        assert scoped.name == "PublicView"


class TestScopeSchema:
    def test_scoped_schema_serializes_and_reparses(self, asdoff_schema):
        scoped = scope_schema(
            asdoff_schema, "ASDOffEvent", ["arln", "fltNum", "org", "dest"],
            scoped_name="PublicDeparture",
        )
        again = parse_schema(schema_to_xml(scoped))
        assert again.complex_type("PublicDeparture").element_names() == [
            "arln", "fltNum", "org", "dest",
        ]

    def test_nested_dependency_carried(self):
        schema = parse_schema(
            '<?xml version="1.0"?>'
            '<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">'
            '<xsd:complexType name="Pos"><xsd:element name="lat" type="xsd:double"/>'
            "</xsd:complexType>"
            '<xsd:complexType name="T">'
            '<xsd:element name="id" type="xsd:int"/>'
            '<xsd:element name="where" type="Pos"/>'
            "</xsd:complexType></xsd:schema>"
        )
        scoped = scope_schema(schema, "T", ["where"])
        assert "Pos" in scoped.complex_types
        assert scoped.complex_type("T").element_names() == ["where"]

    def test_project_record(self, asdoff_schema):
        scoped = scope_complex_type(
            asdoff_schema.complex_type("ASDOffEvent"), ["fltNum", "eta"]
        )
        record = AirlineWorkload(seed=8).record_b()
        projected = project_record(scoped, record)
        # eta_count is synthesized: projection drops the explicit value
        # and the encoder re-derives it from len(eta).
        assert set(projected) == {"fltNum", "eta"}


class TestScopedPublisher:
    SCOPES = {
        "public": ["arln", "fltNum", "org", "dest"],
        "ops": ["cntrID", "arln", "fltNum", "equip", "org", "dest", "off", "eta"],
    }

    def make(self, backbone):
        return ScopedPublisher(
            backbone,
            "flights.dep",
            IOContext(SPARC_32),
            ASDOFF_B_SCHEMA,
            "ASDOffEvent",
            self.SCOPES,
        )

    def test_public_subscriber_sees_redacted_slice(self):
        backbone = EventBackbone()
        public = backbone.subscribe("flights.dep.public", IOContext(X86_64))
        publisher = self.make(backbone)
        record = AirlineWorkload(seed=9).record_b()
        publisher.publish(record)
        event = public.next(timeout=5)
        assert set(event.values) == {"arln", "fltNum", "org", "dest"}
        assert event.values["fltNum"] == record["fltNum"]
        assert event.format_name == "ASDOffEvent__public"

    def test_privileged_subscriber_sees_everything(self):
        backbone = EventBackbone()
        full = backbone.subscribe("flights.dep", IOContext(X86_64))
        publisher = self.make(backbone)
        record = AirlineWorkload(seed=9).record_b()
        publisher.publish(record)
        event = full.next(timeout=5)
        assert event.values == record

    def test_full_pattern_does_not_leak_to_scope_pattern(self):
        """Patterns are the access surface: a subscriber on the exact
        scoped stream never receives the full record."""
        backbone = EventBackbone()
        public = backbone.subscribe("flights.dep.public", IOContext(X86_64))
        publisher = self.make(backbone)
        publisher.publish(AirlineWorkload(seed=9).record_b())
        event = public.next(timeout=5)
        assert "cntrID" not in event.values
        assert public.pending() == 0  # exactly one event arrived

    def test_scoped_schema_publishable_on_metadata_server(self):
        backbone = EventBackbone()
        publisher = self.make(backbone)
        xml = publisher.scoped_schema_xml("public")
        reparsed = parse_schema(xml)
        assert "ASDOffEvent__public" in reparsed.complex_types
        with pytest.raises(SchemaError, match="no scope named"):
            publisher.scoped_schema_xml("nope")

    def test_dynamic_arrays_survive_scoping_end_to_end(self):
        backbone = EventBackbone()
        subscriber = backbone.subscribe("flights.dep.etas", IOContext(X86_64))
        publisher = ScopedPublisher(
            backbone, "flights.dep", IOContext(SPARC_32),
            ASDOFF_B_SCHEMA, "ASDOffEvent", {"etas": ["fltNum", "eta"]},
        )
        record = AirlineWorkload(seed=10).record_b(eta_count=4)
        publisher.publish(record)
        event = subscriber.next(timeout=5)
        assert event.values["eta"] == record["eta"]
        assert event.values["eta_count"] == 4

    def test_delivery_count_sums_streams(self):
        backbone = EventBackbone()
        backbone.subscribe("flights.dep", IOContext(X86_64))
        backbone.subscribe("flights.dep.public", IOContext(X86_64))
        backbone.subscribe("flights.dep.ops", IOContext(X86_64))
        publisher = self.make(backbone)
        delivered = publisher.publish(AirlineWorkload(seed=11).record_b())
        assert delivered == 3
