"""Bounded failure handling for backbone sinks."""

import pytest

from repro import IOContext, SPARC_32, X86_64, XML2Wire
from repro.errors import TransportError
from repro.events import EventBackbone
from repro.events.backbone import _SubscriberQueue
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload


class WedgedQueue(_SubscriberQueue):
    """A sink whose put raises — a subscriber that can't absorb events."""

    def __init__(self, fail=True):
        super().__init__()
        self.fail = fail
        self.attempts = 0

    def put(self, stream, message):
        self.attempts += 1
        if self.fail:
            raise RuntimeError("sink wedged")
        super().put(stream, message)


def make_publisher(backbone):
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
    publisher = backbone.publisher("flights.ATL", context)
    record = AirlineWorkload(seed=5).record_b()
    return publisher, record


class TestSinkPruning:
    def test_wedged_sink_detached_after_limit(self):
        backbone = EventBackbone(sink_failure_limit=3)
        wedged = WedgedQueue()
        backbone.attach_queue("flights.*", wedged)
        publisher, record = make_publisher(backbone)
        for _ in range(5):
            publisher.publish("ASDOffEvent", record)
        # 1 metadata message + data messages until the limit hit.
        assert wedged.attempts == 3
        assert backbone.dropped_sinks == 1

    def test_healthy_sinks_unaffected_by_wedged_peer(self):
        backbone = EventBackbone(sink_failure_limit=2)
        wedged = WedgedQueue()
        backbone.attach_queue("flights.*", wedged)
        receiver = IOContext(X86_64)
        subscription = backbone.subscribe("flights.*", receiver)
        publisher, record = make_publisher(backbone)
        for _ in range(4):
            publisher.publish("ASDOffEvent", record)
        events = [subscription.next(timeout=1) for _ in range(4)]
        assert all(event.format_name == "ASDOffEvent" for event in events)
        assert backbone.dropped_sinks == 1

    def test_intermittent_failures_below_limit_tolerated(self):
        backbone = EventBackbone(sink_failure_limit=3)
        flaky = WedgedQueue(fail=True)
        backbone.attach_queue("flights.*", flaky)
        publisher, record = make_publisher(backbone)
        publisher.publish("ASDOffEvent", record)  # metadata + data: 2 failures
        flaky.fail = False  # recovers before the third consecutive failure
        publisher.publish("ASDOffEvent", record)
        assert backbone.dropped_sinks == 0
        assert len(flaky) == 1

    def test_delivery_count_excludes_failed_sinks(self):
        backbone = EventBackbone(sink_failure_limit=10)
        wedged = WedgedQueue()
        healthy = _SubscriberQueue()
        backbone.attach_queue("s", wedged)
        backbone.attach_queue("s", healthy)
        publisher, record = make_publisher(backbone)
        context = IOContext(SPARC_32)
        XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
        fmt = context.lookup_format("ASDOffEvent")
        delivered = backbone.route("s", context.encode(fmt, record))
        assert delivered == 1

    def test_limit_validated(self):
        with pytest.raises(TransportError):
            EventBackbone(sink_failure_limit=0)
