"""Per-source health, temporary demotion, and structured reports."""

import pytest

from repro.core.discovery import (
    CompiledSource,
    DiscoveryChain,
    MetadataSource,
)
from repro.errors import DiscoveryError
from repro.workloads import ASDOFF_B_SCHEMA


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class ScriptedSource(MetadataSource):
    """Fails while ``broken`` is True, succeeds otherwise."""

    def __init__(self, name="scripted", broken=True):
        self.name = name
        self.broken = broken
        self.fetches = 0

    def fetch(self):
        self.fetches += 1
        if self.broken:
            raise DiscoveryError(f"{self.name} is down")
        from repro.schema.parser import parse_schema

        return parse_schema(ASDOFF_B_SCHEMA)

    def describe(self):
        return f"scripted:{self.name}"


class TestHealthTracking:
    def test_counts_accumulate(self):
        source = ScriptedSource(broken=True)
        chain = DiscoveryChain([source, CompiledSource(ASDOFF_B_SCHEMA)])
        for _ in range(2):
            chain.discover()
        health = chain.health(source)
        assert health.failures == 2
        assert health.consecutive_failures == 2
        assert health.successes == 0

    def test_success_resets_streak(self):
        source = ScriptedSource(broken=True)
        chain = DiscoveryChain([source, CompiledSource(ASDOFF_B_SCHEMA)])
        chain.discover()
        source.broken = False
        chain.discover()
        health = chain.health(source)
        assert health.consecutive_failures == 0
        assert health.successes == 1
        assert health.failures == 1


class TestDemotion:
    def test_demoted_source_moves_to_back(self):
        clock = FakeClock()
        source = ScriptedSource(broken=True)
        compiled = CompiledSource(ASDOFF_B_SCHEMA)
        chain = DiscoveryChain(
            [source, compiled], demote_after=2, demotion_period=30, clock=clock
        )
        chain.discover()
        chain.discover()  # second failure -> demoted
        assert chain.health(source).demoted(clock())
        # While demoted, the healthy fallback is tried first: the broken
        # source is not touched because compiled succeeds immediately.
        fetches_before = source.fetches
        result = chain.discover()
        assert result.source == "compiled:builtin"
        assert not result.attempts  # compiled was first in try order
        assert source.fetches == fetches_before

    def test_demotion_expires_and_source_recovers(self):
        clock = FakeClock()
        source = ScriptedSource(broken=True)
        chain = DiscoveryChain(
            [source, CompiledSource(ASDOFF_B_SCHEMA)],
            demote_after=1,
            demotion_period=30,
            clock=clock,
        )
        chain.discover()  # fails, demoted
        source.broken = False
        clock.advance(31)
        result = chain.discover()
        assert result.source == "scripted:scripted"
        assert not chain.health(source).demoted(clock())

    def test_demoted_source_still_last_resort(self):
        clock = FakeClock()
        source = ScriptedSource(broken=True)
        chain = DiscoveryChain([source], demote_after=1, clock=clock)
        with pytest.raises(DiscoveryError):
            chain.discover()
        # Demoted but it is the only source: still tried.
        source.broken = False
        assert chain.discover().source == "scripted:scripted"


class TestReports:
    def test_report_lists_every_attempt(self):
        source = ScriptedSource(broken=True)
        chain = DiscoveryChain([source, CompiledSource(ASDOFF_B_SCHEMA)])
        result = chain.discover()
        report = result.report
        assert report.tried == 2
        assert [a.ok for a in report.attempts] == [False, True]
        assert "is down" in report.attempts[0].error
        assert report.failures[0].source == "scripted:scripted"
        assert "scripted" in report.describe()
        assert chain.last_report is report

    def test_clean_discovery_report(self):
        chain = DiscoveryChain([CompiledSource(ASDOFF_B_SCHEMA)])
        result = chain.discover()
        assert result.report.tried == 1
        assert result.report.attempts[0].ok
        assert not result.degraded

    def test_exhausted_chain_still_leaves_report(self):
        source = ScriptedSource(broken=True)
        chain = DiscoveryChain([source])
        with pytest.raises(DiscoveryError):
            chain.discover()
        assert chain.last_report.tried == 1
        assert not chain.last_report.attempts[0].ok


class TestReprobe:
    """Periodic re-probe restores demoted sources without live traffic."""

    def demoted_chain(self, reprobe_interval=None):
        clock = FakeClock()
        source = ScriptedSource(broken=True)
        compiled = CompiledSource(ASDOFF_B_SCHEMA)
        chain = DiscoveryChain(
            [source, compiled],
            demote_after=2,
            demotion_period=30,
            clock=clock,
            reprobe_interval=reprobe_interval,
        )
        chain.discover()
        chain.discover()  # second failure -> demoted
        assert chain.health(source).demoted(clock())
        return chain, source, clock

    def test_reprobe_restores_revived_source(self):
        chain, source, clock = self.demoted_chain()
        source.broken = False
        restored = chain.reprobe()
        assert restored == 1
        assert chain.reprobes == 1
        assert not chain.health(source).demoted(clock())
        assert chain.health(source).consecutive_failures == 0
        # The restored source leads the next discovery again.
        fetches = source.fetches
        chain.discover()
        assert source.fetches == fetches + 1

    def test_reprobe_failure_rearms_demotion_window(self):
        chain, source, clock = self.demoted_chain()
        clock.advance(29)  # one tick before natural expiry
        assert chain.reprobe() == 0
        # The failed probe pushed the window out another full period.
        assert chain.health(source).demoted_until == pytest.approx(59)
        clock.advance(2)
        assert chain.health(source).demoted(clock())

    def test_reprobe_skips_healthy_sources(self):
        clock = FakeClock()
        source = ScriptedSource(broken=False)
        chain = DiscoveryChain([source], clock=clock, reprobe_interval=10)
        chain.discover()
        assert chain.reprobe() == 0
        assert chain.reprobes == 0  # nothing demoted, nothing probed

    def test_discover_triggers_reprobe_on_interval(self):
        chain, source, clock = self.demoted_chain(reprobe_interval=10)
        source.broken = False
        fetches = source.fetches
        chain.discover()  # within the interval: no probe yet
        assert source.fetches == fetches
        clock.advance(11)
        chain.discover()  # interval elapsed -> automatic re-probe
        assert chain.reprobes == 1
        assert not chain.health(source).demoted(clock())

    def test_reprobe_is_rate_limited(self):
        chain, source, clock = self.demoted_chain(reprobe_interval=10)
        clock.advance(11)
        chain.discover()
        probes_after_first = chain.reprobes
        chain.discover()  # immediately again: rate limiter holds
        assert chain.reprobes == probes_after_first

    def test_interval_must_be_positive(self):
        with pytest.raises(DiscoveryError):
            DiscoveryChain(
                [CompiledSource(ASDOFF_B_SCHEMA)], reprobe_interval=0
            )
