"""Unit tests for the C header generator — anchored on Appendix A."""

import pytest

from repro.core.cgen import generate_c_header
from repro.errors import SchemaError

from tests.schema.conftest import FIGURE_9, FIGURE_12


class TestStructGeneration:
    def test_figure7_struct_regenerated(self):
        """Figure 9's XML must regenerate Figure 7's C struct, member by
        member — including the synthesized eta_count."""
        header = generate_c_header(FIGURE_9)
        assert "typedef struct ASDOffEvent_s" in header
        for member in (
            "char* cntrID;",
            "char* arln;",
            "int fltNum;",
            "char* equip;",
            "char* org;",
            "char* dest;",
            "unsigned long off[5];",
            "unsigned long *eta;",
            "int eta_count;",
        ):
            assert member in header, member

    def test_figure10_nested_struct(self):
        header = generate_c_header(FIGURE_12)
        assert "typedef struct threeASDOffs_s" in header
        for member in (
            "ASDOffEvent one;",
            "double bart;",
            "ASDOffEvent two;",
            "double lisa;",
            "ASDOffEvent three;",
        ):
            assert member in header, member

    def test_header_guard_and_offsetof(self):
        header = generate_c_header(FIGURE_9, guard="ASDOFF_H")
        assert header.startswith("#ifndef ASDOFF_H")
        assert header.rstrip().endswith("#endif /* ASDOFF_H */")
        assert "#include <stddef.h>" in header


class TestIOFieldGeneration:
    def test_figure8_iofields_regenerated(self):
        header = generate_c_header(FIGURE_9)
        assert "IOField ASDOffEventFields[] =" in header
        for entry in (
            '{ "cntrID", "string", sizeof (char*), IOOffset (ASDOffEvent*, cntrID) },',
            '{ "fltNum", "integer", sizeof (int), IOOffset (ASDOffEvent*, fltNum) },',
            '{ "off", "integer[5]", sizeof (unsigned long), IOOffset (ASDOffEvent*, off) },',
            '{ "eta", "integer[eta_count]", sizeof (unsigned long), IOOffset (ASDOffEvent*, eta) },',
            '{ "eta_count", "integer", sizeof (int), IOOffset (ASDOffEvent*, eta_count) },',
            "{ NULL, NULL, 0, 0 }",
        ):
            assert entry in header, entry

    def test_figure11_nested_iofields(self):
        header = generate_c_header(FIGURE_12)
        assert (
            '{ "one", "ASDOffEvent", sizeof (ASDOffEvent), '
            "IOOffset (threeASDOffs*, one) }," in header
        )
        assert (
            '{ "bart", "double", sizeof (double), '
            "IOOffset (threeASDOffs*, bart) }," in header
        )


class TestConsistencyWithTooling:
    def test_generated_struct_reparses_through_cdecl(self):
        """Closing the loop completely: the generated C struct parses
        back through the C declaration parser and produces the same
        layout the schema registration computes."""
        from repro.arch import SPARC_32
        from repro.arch.cdecl import build_layouts, parse_structs
        from repro.core import XML2Wire
        from repro.pbio import IOContext

        header = generate_c_header(FIGURE_9)
        struct_text = header[header.index("typedef struct"):]
        struct_text = struct_text[: struct_text.index("} ASDOffEvent;") + len("} ASDOffEvent;")]
        layouts = build_layouts(parse_structs(struct_text), SPARC_32)
        fmt = XML2Wire(IOContext(SPARC_32)).register_schema(FIGURE_9)[0]
        layout = layouts["ASDOffEvent"]
        assert layout.size == fmt.record_length
        for field in fmt.fields:
            assert layout.offsetof(field.name) == field.offset

    def test_unknown_type_rejected(self):
        schema = (
            '<?xml version="1.0"?>'
            '<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">'
            '<xsd:complexType name="T"><xsd:element name="x" type="xsd:int"/>'
            "</xsd:complexType></xsd:schema>"
        )
        header = generate_c_header(schema)
        assert "int x;" in header
