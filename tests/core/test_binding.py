"""Unit tests for the binding step (BoundFormat tokens)."""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.core import XML2Wire, bind, validate_record
from repro.errors import BindingError
from repro.pbio import IOContext, IOField

from tests.schema.conftest import FIGURE_9

RECORD = {
    "cntrID": "ZTL", "arln": "DL", "fltNum": 1, "equip": "B7",
    "org": "ATL", "dest": "LAX", "off": [1, 2, 3, 4, 5],
    "eta": [7], "eta_count": 1,
}


@pytest.fixture
def bound():
    tool = XML2Wire(IOContext(SPARC_32))
    tool.register_schema(FIGURE_9)
    return bind(tool.context, "ASDOffEvent")


class TestBoundFormat:
    def test_encode_decode_through_token(self, bound):
        message = bound.encode(RECORD)
        assert bound.decode(message).values == RECORD

    def test_bind_by_format_object(self):
        ctx = IOContext(X86_64)
        fmt = ctx.register_format("t", [IOField("v", "integer", 4, 0)])
        token = bind(ctx, fmt)
        assert token.name == "t"
        assert token.decode(token.encode({"v": 5})).values == {"v": 5}

    def test_check_passes_on_valid_record(self, bound):
        bound.check(RECORD)

    def test_check_reports_missing_field(self, bound):
        broken = dict(RECORD)
        del broken["org"]
        with pytest.raises(BindingError, match="org: missing"):
            bound.check(broken)

    def test_check_reports_unknown_field(self, bound):
        with pytest.raises(BindingError, match="not a field"):
            bound.check({**RECORD, "bogus": 1})

    def test_check_reports_wrong_shapes(self, bound):
        with pytest.raises(BindingError, match="expected 5 elements"):
            bound.check({**RECORD, "off": [1, 2]})
        with pytest.raises(BindingError, match="expected str"):
            bound.check({**RECORD, "cntrID": 42})
        with pytest.raises(BindingError, match="expected int"):
            bound.check({**RECORD, "fltNum": "twelve"})

    def test_count_field_may_be_omitted(self, bound):
        record = dict(RECORD)
        del record["eta_count"]
        bound.check(record)


class TestValidateRecord:
    def test_collects_all_problems(self, bound):
        problems = validate_record(bound.format, {"cntrID": 7, "off": "nope"})
        assert len(problems) >= 3

    def test_empty_for_valid(self, bound):
        assert validate_record(bound.format, RECORD) == []

    def test_nested_records_checked_recursively(self):
        ctx = IOContext(X86_64)
        inner = ctx.register_format("inner", [IOField("v", "integer", 4, 0)])
        outer = ctx.register_format("outer", [IOField("a", "inner", 4, 0)])
        assert validate_record(outer, {"a": {"v": 1}}) == []
        problems = validate_record(outer, {"a": {"v": "x"}})
        assert any("a.v" in p for p in problems)
        problems = validate_record(outer, {"a": 5})
        assert any("expected a dict" in p for p in problems)

    def test_bools_are_not_ints(self):
        """A common Python pitfall: True is an int subclass, but sending a
        bool where the format says integer is almost always a bug."""
        ctx = IOContext(X86_64)
        fmt = ctx.register_format("t", [IOField("v", "integer", 4, 0)])
        assert validate_record(fmt, {"v": True})
