"""Unit tests for the discovery chain (remote → file → compiled-in)."""

import pytest

from repro.core import CompiledSource, DiscoveryChain, FileSource, URLSource
from repro.errors import DiscoveryError
from repro.metaserver import MetadataClient, MetadataServer

from tests.schema.conftest import FIGURE_6, FIGURE_9


class TestSources:
    def test_compiled_source_always_succeeds(self):
        source = CompiledSource(FIGURE_6, label="asdoff-v1")
        assert "ASDOffEvent" in source.fetch().complex_types
        assert source.describe() == "compiled:asdoff-v1"

    def test_file_source(self, tmp_path):
        path = tmp_path / "s.xsd"
        path.write_text(FIGURE_6, encoding="utf-8")
        source = FileSource(path)
        assert "ASDOffEvent" in source.fetch().complex_types

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DiscoveryError, match="no schema file"):
            FileSource(tmp_path / "absent.xsd").fetch()

    def test_url_source_against_live_server(self):
        with MetadataServer() as server:
            url = server.publish_schema("/s.xsd", FIGURE_6)
            source = URLSource(url, MetadataClient())
            assert "ASDOffEvent" in source.fetch().complex_types


class TestChainSemantics:
    def test_first_success_wins(self, tmp_path):
        path = tmp_path / "s.xsd"
        path.write_text(FIGURE_9, encoding="utf-8")
        chain = DiscoveryChain([FileSource(path), CompiledSource(FIGURE_6)])
        result = chain.discover()
        assert result.source.startswith("file:")
        assert not result.degraded
        # FIGURE_9's arrays prove it came from the file, not the fallback.
        assert result.schema.complex_type("ASDOffEvent").element("off").occurs.count == 5

    def test_fallback_to_compiled_on_unreachable_server(self):
        with MetadataServer() as server:
            dead_url = server.url_for("/s.xsd")
        # Server is now stopped: the URL is unreachable.
        chain = DiscoveryChain(
            [
                URLSource(dead_url, MetadataClient(timeout=0.3)),
                CompiledSource(FIGURE_6),
            ]
        )
        result = chain.discover()
        assert result.source == "compiled:builtin"
        assert result.degraded
        assert any("url:" in attempt for attempt in result.attempts)

    def test_fallback_on_404(self):
        with MetadataServer() as server:
            chain = DiscoveryChain(
                [
                    URLSource(server.url_for("/missing.xsd"), MetadataClient()),
                    CompiledSource(FIGURE_6),
                ]
            )
            result = chain.discover()
            assert result.source == "compiled:builtin"

    def test_all_sources_failing_reports_each(self, tmp_path):
        with MetadataServer() as server:
            dead_url = server.url_for("/s.xsd")
        chain = DiscoveryChain(
            [
                URLSource(dead_url, MetadataClient(timeout=0.3)),
                FileSource(tmp_path / "absent.xsd"),
            ]
        )
        with pytest.raises(DiscoveryError) as excinfo:
            chain.discover()
        message = str(excinfo.value)
        assert "url:" in message
        assert "file:" in message

    def test_empty_chain_rejected(self):
        with pytest.raises(DiscoveryError, match="no sources"):
            DiscoveryChain().discover()

    def test_add_builds_fluently(self):
        chain = DiscoveryChain().add(CompiledSource(FIGURE_6))
        assert chain.discover().source == "compiled:builtin"

    def test_restored_server_preferred_again(self, tmp_path):
        """Once the primary source recovers, the chain uses it (no sticky
        degradation)."""
        with MetadataServer() as server:
            url = server.publish_schema("/s.xsd", FIGURE_9)
            chain = DiscoveryChain(
                [URLSource(url, MetadataClient(ttl=0)), CompiledSource(FIGURE_6)]
            )
            assert chain.discover().source.startswith("url:")
