"""Unit tests for the stub generator (paper §7 future work)."""

import pytest

from repro.arch import SPARC_32, X86_64
from repro.core.stubgen import generate_stub_source, load_stubs
from repro.pbio import IOContext

from tests.schema.conftest import FIGURE_12, FIGURE_9


class TestGeneratedSource:
    def test_source_has_dataclass_per_type(self):
        source = generate_stub_source(FIGURE_12)
        assert source.count("@dataclass") == 2
        assert "class ASDOffEvent:" in source
        assert "class threeASDOffs:" in source

    def test_source_compiles_standalone(self):
        compile(generate_stub_source(FIGURE_9), "<stubs>", "exec")

    def test_synthesized_count_derived_in_to_record(self):
        source = generate_stub_source(FIGURE_9)
        assert "record['eta_count'] = len(self.eta)" in source

    def test_schema_embedded_for_registration(self):
        source = generate_stub_source(FIGURE_9)
        assert "SCHEMA = " in source
        assert "def register(context):" in source


class TestLiveStubs:
    @pytest.fixture
    def stubs(self):
        return load_stubs(FIGURE_9)

    def test_default_construction(self, stubs):
        event = stubs.ASDOffEvent()
        assert event.cntrID is None
        assert event.off == [0, 0, 0, 0, 0]
        assert event.eta == []

    def test_roundtrip_through_bcm(self, stubs):
        context = IOContext(SPARC_32)
        stubs.register(context)
        event = stubs.ASDOffEvent(
            cntrID="ZTL", arln="DL", fltNum=7, equip="B757", org="ATL",
            dest="LAX", off=[1, 2, 3, 4, 5], eta=[10, 20],
        )
        message = context.encode("ASDOffEvent", event.to_record())
        receiver = IOContext(X86_64)
        receiver.learn_format(context.lookup_format("ASDOffEvent").to_wire_metadata())
        decoded = receiver.decode(message)
        rebuilt = stubs.ASDOffEvent.from_record(decoded.values)
        assert rebuilt.cntrID == "ZTL"
        assert rebuilt.eta == [10, 20]
        assert rebuilt == stubs.ASDOffEvent.from_record(decoded.values)

    def test_nested_stubs(self):
        stubs = load_stubs(FIGURE_12)
        three = stubs.threeASDOffs()
        assert isinstance(three.one, stubs.ASDOffEvent)
        three.one.cntrID = "ZNY"
        three.bart = 1.5
        record = three.to_record()
        assert record["one"]["cntrID"] == "ZNY"
        rebuilt = stubs.threeASDOffs.from_record(record)
        assert rebuilt.one.cntrID == "ZNY"
        assert rebuilt.bart == 1.5

    def test_nested_roundtrip_through_bcm(self):
        stubs = load_stubs(FIGURE_12)
        context = IOContext(SPARC_32)
        stubs.register(context)
        three = stubs.threeASDOffs()
        for part in (three.one, three.two, three.three):
            part.cntrID = "ZTL"
            part.eta = [5]
        message = context.encode("threeASDOffs", three.to_record())
        decoded = context.decode(message)
        rebuilt = stubs.threeASDOffs.from_record(decoded.values)
        assert rebuilt.two.eta == [5]

    def test_stubs_keep_evolution_tolerance(self, stubs):
        """The paper's §4.3 point inverted: unlike IDL stubs, these keep
        working when the wire format grows, because decode projects."""
        sender = IOContext(SPARC_32)
        v2_schema = FIGURE_9.replace(
            '<xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />',
            '<xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />\n'
            '    <xsd:element name="gate" type="xsd:string" />',
        )
        from repro.core import XML2Wire

        XML2Wire(sender).register_schema(v2_schema)
        record = {
            "cntrID": "ZTL", "arln": "DL", "fltNum": 1, "equip": "B7",
            "org": "ATL", "dest": "LAX", "off": [1, 2, 3, 4, 5],
            "eta": [], "eta_count": 0, "gate": "A17",
        }
        message = sender.encode("ASDOffEvent", record)

        receiver = IOContext(X86_64)
        stubs.register(receiver)
        receiver.learn_format(sender.lookup_format("ASDOffEvent").to_wire_metadata())
        decoded = receiver.decode(message, expect="ASDOffEvent")
        rebuilt = stubs.ASDOffEvent.from_record(decoded.values)
        assert rebuilt.cntrID == "ZTL"
        assert not hasattr(rebuilt, "gate")
