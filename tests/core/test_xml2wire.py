"""Unit tests for the xml2wire tool — the paper's Figures 5/8/11 anchor.

The gold standard here is the paper itself: feeding the Appendix A
schema documents (Figures 6, 9, 12) through xml2wire must produce the
PBIO metadata printed in Figures 5, 8 and 11, with sizes and offsets
matching a SPARC compiler's layout of Figure 7/10's C structs.
"""

import pytest

from repro.arch import SPARC_32, X86_32, X86_64
from repro.core import XML2Wire
from repro.errors import FormatRegistrationError, SchemaError
from repro.pbio import IOContext

from tests.schema.conftest import FIGURE_6, FIGURE_9, FIGURE_12


def tool_on(arch):
    return XML2Wire(IOContext(arch))


class TestFigure5FromFigure6:
    """Structure A: no arrays, no nesting."""

    def test_structure_size_matches_table1(self):
        fmt = tool_on(SPARC_32).register_schema(FIGURE_6)[0]
        assert fmt.record_length == 32

    def test_field_metadata_matches_figure5(self):
        fmt = tool_on(SPARC_32).register_schema(FIGURE_6)[0]
        expected = [
            ("cntrID", "string", 4, 0),
            ("arln", "string", 4, 4),
            ("fltNum", "integer", 4, 8),
            ("equip", "string", 4, 12),
            ("org", "string", 4, 16),
            ("dest", "string", 4, 20),
            ("off", "unsigned integer", 4, 24),
            ("eta", "unsigned integer", 4, 28),
        ]
        actual = [(f.name, f.type, f.size, f.offset) for f in fmt.fields]
        assert actual == expected

    def test_sizes_adapt_to_architecture(self):
        """Run-time sizing: the same XML registers different native sizes
        on an LP64 machine — the architecture independence the paper
        claims for XML metadata."""
        fmt64 = tool_on(X86_64).register_schema(FIGURE_6)[0]
        assert fmt64.field("cntrID").size == 8  # char* on LP64
        assert fmt64.field("off").size == 8  # unsigned long on LP64
        assert fmt64.record_length == 64


class TestFigure8FromFigure9:
    """Structure B: static and dynamically-allocated arrays."""

    def test_structure_size_matches_table1(self):
        fmt = tool_on(SPARC_32).register_schema(FIGURE_9)[0]
        assert fmt.record_length == 52

    def test_field_metadata_matches_figure8(self):
        fmt = tool_on(SPARC_32).register_schema(FIGURE_9)[0]
        expected = [
            ("cntrID", "string", 4, 0),
            ("arln", "string", 4, 4),
            ("fltNum", "integer", 4, 8),
            ("equip", "string", 4, 12),
            ("org", "string", 4, 16),
            ("dest", "string", 4, 20),
            ("off", "unsigned integer[5]", 4, 24),
            ("eta", "unsigned integer[eta_count]", 4, 44),
            ("eta_count", "integer", 4, 48),
        ]
        actual = [(f.name, f.type, f.size, f.offset) for f in fmt.fields]
        assert actual == expected

    def test_synthesized_count_field_appended(self):
        """Figure 9's XML has no eta_count element, but Figure 8's PBIO
        metadata does: xml2wire synthesizes it."""
        fmt = tool_on(SPARC_32).register_schema(FIGURE_9)[0]
        assert fmt.field_names()[-1] == "eta_count"


class TestFigure11FromFigure12:
    """Structures C and D: composition by nesting."""

    def test_structure_size_matches_table1(self):
        formats = tool_on(SPARC_32).register_schema(FIGURE_12)
        outer = formats[1]
        assert outer.name == "threeASDOffs"
        # sizeof == 184 with tail padding; the paper's 180 is the
        # offset past the last member (see tests/arch/test_layout.py).
        assert outer.record_length == 184
        layout = tool_on(SPARC_32).catalog  # fresh tool for the entry
        assert outer.field("three").offset + outer.field("three").size == 180

    def test_nested_field_metadata_matches_figure11(self):
        formats = tool_on(SPARC_32).register_schema(FIGURE_12)
        outer = formats[1]
        names_types = [(f.name, f.type) for f in outer.fields]
        assert names_types == [
            ("one", "ASDOffEvent"),
            ("bart", "double"),
            ("two", "ASDOffEvent"),
            ("lisa", "double"),
            ("three", "ASDOffEvent"),
        ]
        assert outer.field("one").size == 52
        assert outer.field("bart").offset == 56  # double aligned to 8

    def test_nested_format_resolves_to_registered_inner(self):
        tool = tool_on(SPARC_32)
        inner, outer = tool.register_schema(FIGURE_12)
        assert outer.field("one").nested is inner


class TestEndToEnd:
    RECORD = {
        "cntrID": "ZTL", "arln": "DL", "fltNum": 1204, "equip": "B757",
        "org": "ATL", "dest": "LAX", "off": [1, 2, 3, 4, 5],
        "eta": [10, 20], "eta_count": 2,
    }

    def test_xml2wire_formats_are_immediately_usable(self):
        tool = tool_on(SPARC_32)
        tool.register_schema(FIGURE_9)
        message = tool.context.encode("ASDOffEvent", self.RECORD)
        receiver = IOContext(X86_64)
        receiver.learn_format(tool.lookup("ASDOffEvent").to_wire_metadata())
        assert receiver.decode(message).values == self.RECORD

    def test_same_schema_both_endpoints_different_architectures(self):
        """The paper's deployment: every participant runs xml2wire
        against the same document on its own machine."""
        sender_tool = tool_on(SPARC_32)
        receiver_tool = tool_on(X86_32)
        sender_tool.register_schema(FIGURE_9)
        receiver_tool.register_schema(FIGURE_9)
        message = sender_tool.context.encode("ASDOffEvent", self.RECORD)
        receiver_tool.context.learn_format(
            sender_tool.lookup("ASDOffEvent").to_wire_metadata()
        )
        decoded = receiver_tool.context.decode(message, expect="ASDOffEvent")
        assert decoded.values == self.RECORD

    def test_registration_is_idempotent(self):
        tool = tool_on(SPARC_32)
        first = tool.register_schema(FIGURE_9)
        second = tool.register_schema(FIGURE_9)
        assert first[0] is second[0]

    def test_lookup_unknown_raises(self):
        with pytest.raises(SchemaError, match="no format named"):
            tool_on(SPARC_32).lookup("nope")


class TestTypeCoverage:
    def wrap(self, body):
        return (
            '<?xml version="1.0"?>'
            '<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">'
            f"{body}</xsd:schema>"
        )

    def test_all_primitive_kinds_map(self):
        schema = self.wrap(
            '<xsd:complexType name="T">'
            '<xsd:element name="s" type="xsd:string"/>'
            '<xsd:element name="i" type="xsd:int"/>'
            '<xsd:element name="u" type="xsd:unsigned-int"/>'
            '<xsd:element name="f" type="xsd:float"/>'
            '<xsd:element name="d" type="xsd:double"/>'
            '<xsd:element name="b" type="xsd:boolean"/>'
            '<xsd:element name="c" type="xsd:char"/>'
            '<xsd:element name="sh" type="xsd:short"/>'
            "</xsd:complexType>"
        )
        fmt = tool_on(X86_64).register_schema(schema)[0]
        by_name = {f.name: f for f in fmt.fields}
        assert by_name["s"].type == "string"
        assert by_name["i"].type == "integer" and by_name["i"].size == 4
        assert by_name["u"].type == "unsigned integer"
        assert by_name["f"].type == "float" and by_name["f"].size == 4
        assert by_name["d"].type == "double" and by_name["d"].size == 8
        assert by_name["b"].type == "boolean"
        assert by_name["c"].type == "char" and by_name["c"].size == 1
        assert by_name["sh"].size == 2

    def test_simple_type_maps_through_base(self):
        schema = self.wrap(
            '<xsd:simpleType name="Airline">'
            '<xsd:restriction base="xsd:string">'
            '<xsd:enumeration value="DL"/></xsd:restriction></xsd:simpleType>'
            '<xsd:complexType name="T"><xsd:element name="a" type="Airline"/></xsd:complexType>'
        )
        fmt = tool_on(X86_64).register_schema(schema)[0]
        assert fmt.field("a").is_string

    def test_char_fixed_array_is_buffer(self):
        schema = self.wrap(
            '<xsd:complexType name="T">'
            '<xsd:element name="tag" type="xsd:char" minOccurs="8" maxOccurs="8"/>'
            "</xsd:complexType>"
        )
        fmt = tool_on(X86_64).register_schema(schema)[0]
        assert fmt.field("tag").type.render() == "char[8]"
        assert fmt.record_length == 8

    def test_explicit_length_field_not_duplicated(self):
        schema = self.wrap(
            '<xsd:complexType name="T">'
            '<xsd:element name="n" type="xsd:integer"/>'
            '<xsd:element name="data" type="xsd:double" maxOccurs="n"/>'
            "</xsd:complexType>"
        )
        fmt = tool_on(X86_64).register_schema(schema)[0]
        assert fmt.field_names() == ["n", "data"]
        assert fmt.field("data").type.length_field == "n"

    def test_dynamic_array_of_strings_rejected(self):
        schema = self.wrap(
            '<xsd:complexType name="T">'
            '<xsd:element name="names" type="xsd:string" maxOccurs="*"/>'
            "</xsd:complexType>"
        )
        with pytest.raises(SchemaError, match="dynamic arrays of\\s+strings"):
            tool_on(X86_64).register_schema(schema)

    def test_dynamic_array_of_nested_rejected(self):
        schema = self.wrap(
            '<xsd:complexType name="Inner"><xsd:element name="v" type="xsd:int"/></xsd:complexType>'
            '<xsd:complexType name="T">'
            '<xsd:element name="items" type="Inner" maxOccurs="*"/>'
            "</xsd:complexType>"
        )
        with pytest.raises(SchemaError, match="nested"):
            tool_on(X86_64).register_schema(schema)

    def test_fixed_array_of_nested_supported(self):
        schema = self.wrap(
            '<xsd:complexType name="Inner"><xsd:element name="v" type="xsd:int"/></xsd:complexType>'
            '<xsd:complexType name="T">'
            '<xsd:element name="items" type="Inner" minOccurs="3" maxOccurs="3"/>'
            "</xsd:complexType>"
        )
        fmt = tool_on(X86_64).register_schema(schema)[1]
        assert fmt.field("items").type.render() == "Inner[3]"
        assert fmt.record_length == 12


class TestFileRegistration:
    def test_register_from_file(self, tmp_path):
        path = tmp_path / "asdoff.xsd"
        path.write_text(FIGURE_9, encoding="utf-8")
        fmt = tool_on(SPARC_32).register_file(path)[0]
        assert fmt.record_length == 52
