"""Unit tests for in-process and TCP channels plus the network model."""

import threading

import pytest

from repro.errors import ChannelClosedError, TransportError
from repro.transport import NetworkModel, connect, listen, make_pipe
from repro.transport.netsim import lan_model, wan_model


class TestInprocChannel:
    def test_messages_delivered_in_order(self):
        a, b = make_pipe()
        a.send(b"one")
        a.send(b"two")
        assert b.recv() == b"one"
        assert b.recv() == b"two"

    def test_bidirectional(self):
        a, b = make_pipe()
        a.send(b"ping")
        assert b.recv() == b"ping"
        b.send(b"pong")
        assert a.recv() == b"pong"

    def test_messages_are_copied(self):
        a, b = make_pipe()
        payload = bytearray(b"mutable")
        a.send(bytes(payload))
        payload[0] = ord("X")
        assert b.recv() == b"mutable"

    def test_recv_timeout(self):
        a, b = make_pipe()
        with pytest.raises(TransportError, match="timed out"):
            b.recv(timeout=0.01)

    def test_recv_after_peer_close_drains_then_raises(self):
        a, b = make_pipe()
        a.send(b"last")
        a.close()
        assert b.recv() == b"last"
        with pytest.raises(ChannelClosedError):
            b.recv()

    def test_send_to_closed_peer_raises(self):
        a, b = make_pipe()
        b.close()
        with pytest.raises(ChannelClosedError):
            a.send(b"x")

    def test_send_on_closed_end_raises(self):
        a, b = make_pipe()
        a.close()
        with pytest.raises(ChannelClosedError):
            a.send(b"x")

    def test_cross_thread_delivery(self):
        a, b = make_pipe()
        received = []

        def consumer():
            for _ in range(100):
                received.append(b.recv(timeout=5))

        thread = threading.Thread(target=consumer)
        thread.start()
        for i in range(100):
            a.send(str(i).encode())
        thread.join(timeout=5)
        assert received == [str(i).encode() for i in range(100)]

    def test_close_wakes_blocked_receiver(self):
        a, b = make_pipe()
        results = []

        def consumer():
            try:
                b.recv(timeout=5)
            except ChannelClosedError:
                results.append("closed")

        thread = threading.Thread(target=consumer)
        thread.start()
        a.close()
        thread.join(timeout=5)
        assert results == ["closed"]

    def test_context_manager_closes(self):
        a, b = make_pipe()
        with a:
            pass
        assert a.closed


class TestNetworkModel:
    def test_delay_components(self):
        model = NetworkModel(latency=0.010, bandwidth=1000)
        assert model.delay_for(500) == pytest.approx(0.010 + 0.5)

    def test_infinite_bandwidth(self):
        model = NetworkModel(latency=0.001)
        assert model.delay_for(10**9) == pytest.approx(0.001)

    def test_virtual_accounting_does_not_sleep(self):
        import time

        model = NetworkModel(latency=10.0, realtime=False)
        start = time.monotonic()
        a, b = make_pipe(model)
        a.send(b"x" * 1000)
        assert b.recv() == b"x" * 1000
        assert time.monotonic() - start < 1.0
        assert model.stats.messages == 1
        assert model.stats.bytes == 1000
        assert model.stats.virtual_seconds == pytest.approx(10.0)

    def test_realtime_model_sleeps(self):
        import time

        model = NetworkModel(latency=0.05, realtime=True)
        a, b = make_pipe(model)
        start = time.monotonic()
        a.send(b"x")
        assert time.monotonic() - start >= 0.05

    def test_directional_models(self):
        forward = NetworkModel(latency=1.0)
        backward = NetworkModel(latency=2.0)
        a, b = make_pipe(forward, reverse_model=backward)
        a.send(b"x")
        b.recv()
        b.send(b"y")
        a.recv()
        assert forward.stats.virtual_seconds == pytest.approx(1.0)
        assert backward.stats.virtual_seconds == pytest.approx(2.0)

    def test_presets_have_sane_shape(self):
        assert lan_model().delay_for(0) < wan_model().delay_for(0)
        assert lan_model().bandwidth > wan_model().bandwidth

    def test_invalid_parameters_rejected(self):
        with pytest.raises(TransportError):
            NetworkModel(latency=-1)
        with pytest.raises(TransportError):
            NetworkModel(bandwidth=0)


class TestTCPChannel:
    def test_roundtrip_over_loopback(self):
        with listen() as listener:
            host, port = listener.address
            results = {}

            def server():
                channel = listener.accept(timeout=5)
                results["got"] = channel.recv(timeout=5)
                channel.send(b"reply")
                channel.close()

            thread = threading.Thread(target=server)
            thread.start()
            client = connect(host, port)
            client.send(b"request")
            assert client.recv(timeout=5) == b"reply"
            thread.join(timeout=5)
            client.close()
            assert results["got"] == b"request"

    def test_large_message_survives_segmentation(self):
        with listen() as listener:
            host, port = listener.address
            payload = bytes(range(256)) * 4096  # 1 MiB

            def server():
                channel = listener.accept(timeout=5)
                channel.send(payload)
                channel.close()

            thread = threading.Thread(target=server)
            thread.start()
            client = connect(host, port)
            assert client.recv(timeout=10) == payload
            thread.join(timeout=5)
            client.close()

    def test_recv_after_peer_close_raises_channel_closed(self):
        with listen() as listener:
            host, port = listener.address

            def server():
                listener.accept(timeout=5).close()

            thread = threading.Thread(target=server)
            thread.start()
            client = connect(host, port)
            with pytest.raises(ChannelClosedError):
                client.recv(timeout=5)
            thread.join(timeout=5)
            client.close()

    def test_connect_refused_raises_transport_error(self):
        listener = listen()
        host, port = listener.address
        listener.close()
        with pytest.raises(TransportError, match="connect"):
            connect(host, port, timeout=0.5)

    def test_recv_timeout(self):
        with listen() as listener:
            host, port = listener.address
            server_side = {}

            def server():
                server_side["chan"] = listener.accept(timeout=5)

            thread = threading.Thread(target=server)
            thread.start()
            client = connect(host, port)
            thread.join(timeout=5)
            with pytest.raises(TransportError, match="timed out"):
                client.recv(timeout=0.05)
            client.close()
            server_side["chan"].close()
