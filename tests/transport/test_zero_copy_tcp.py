"""Zero-copy TCP paths: scatter-gather sends, batched send_many, recv_view."""

import threading

import pytest

from repro.errors import ChannelClosedError
from repro.transport import (
    connect,
    listen,
    make_pipe,
    recv_view_debug_enabled,
    set_recv_view_debug,
)


@pytest.fixture
def tcp_pair():
    with listen() as listener:
        host, port = listener.address
        accepted = {}

        def acceptor():
            accepted["channel"] = listener.accept(timeout=5.0)

        thread = threading.Thread(target=acceptor)
        thread.start()
        client = connect(host, port)
        thread.join(timeout=5.0)
        server = accepted["channel"]
        try:
            yield client, server
        finally:
            client.close()
            server.close()


class TestScatterGatherSend:
    def test_roundtrip(self, tcp_pair):
        client, server = tcp_pair
        client.send(b"via sendmsg")
        assert server.recv(timeout=5.0) == b"via sendmsg"

    def test_memoryview_message(self, tcp_pair):
        client, server = tcp_pair
        client.send(memoryview(b"a view payload"))
        assert server.recv(timeout=5.0) == b"a view payload"

    def test_bytearray_message(self, tcp_pair):
        client, server = tcp_pair
        client.send(bytearray(b"mutable payload"))
        assert server.recv(timeout=5.0) == b"mutable payload"

    def test_empty_message(self, tcp_pair):
        client, server = tcp_pair
        client.send(b"")
        assert server.recv(timeout=5.0) == b""

    def test_large_message_partial_sends(self, tcp_pair):
        client, server = tcp_pair
        big = bytes(range(256)) * 8192  # 2 MiB: exceeds socket buffers
        received = {}

        def reader():
            received["message"] = server.recv(timeout=10.0)

        thread = threading.Thread(target=reader)
        thread.start()
        client.send(big)
        thread.join(timeout=10.0)
        assert received["message"] == big


class TestSendMany:
    def test_batch_arrives_as_individual_frames(self, tcp_pair):
        client, server = tcp_pair
        messages = [b"frame-%d" % i for i in range(10)]
        assert client.send_many(messages) == 10
        for expected in messages:
            assert server.recv(timeout=5.0) == expected

    def test_empty_batch(self, tcp_pair):
        client, server = tcp_pair
        assert client.send_many([]) == 0

    def test_batch_of_views(self, tcp_pair):
        client, server = tcp_pair
        messages = [memoryview(b"v" * n) for n in (1, 100, 1000)]
        assert client.send_many(messages) == 3
        for expected in messages:
            assert server.recv(timeout=5.0) == bytes(expected)

    def test_closed_channel_rejected(self, tcp_pair):
        client, server = tcp_pair
        client.close()
        with pytest.raises(ChannelClosedError):
            client.send_many([b"x"])

    def test_inproc_default_loops_send(self):
        a, b = make_pipe()
        assert a.send_many([b"one", b"two"]) == 2
        assert b.recv() == b"one"
        assert b.recv() == b"two"


class TestRecvView:
    def test_returns_view_of_message(self, tcp_pair):
        client, server = tcp_pair
        client.send(b"look, no copy")
        view = server.recv_view(timeout=5.0)
        assert isinstance(view, memoryview)
        assert bytes(view) == b"look, no copy"

    def test_view_invalidated_by_next_recv(self, tcp_pair):
        client, server = tcp_pair
        client.send(b"aaaa")
        client.send(b"bbbb")
        first = server.recv_view(timeout=5.0)
        server.recv_view(timeout=5.0)
        # The ownership contract: the old view now reads the new frame.
        assert bytes(first) == b"bbbb"

    def test_recv_still_returns_owned_bytes(self, tcp_pair):
        client, server = tcp_pair
        client.send(b"aaaa")
        client.send(b"bbbb")
        first = server.recv(timeout=5.0)
        server.recv(timeout=5.0)
        assert first == b"aaaa"

    def test_inproc_default_returns_bytes(self):
        a, b = make_pipe()
        a.send(b"plain")
        assert b.recv_view() == b"plain"


class TestRecvViewDebug:
    """The debug-mode contract check: stale views raise, never alias."""

    @pytest.fixture
    def debug_mode(self):
        set_recv_view_debug(True)
        try:
            yield
        finally:
            set_recv_view_debug(False)

    def test_flag_round_trips(self):
        assert recv_view_debug_enabled() is False
        set_recv_view_debug(True)
        try:
            assert recv_view_debug_enabled() is True
        finally:
            set_recv_view_debug(False)

    def test_stale_view_raises_instead_of_aliasing(self, tcp_pair, debug_mode):
        client, server = tcp_pair
        client.send(b"aaaa")
        client.send(b"bbbb")
        first = server.recv_view(timeout=5.0)
        assert bytes(first) == b"aaaa"
        second = server.recv_view(timeout=5.0)
        assert bytes(second) == b"bbbb"
        # Regression: without debug mode this would silently read "bbbb".
        with pytest.raises(ValueError):
            bytes(first)

    def test_plain_recv_also_revokes(self, tcp_pair, debug_mode):
        client, server = tcp_pair
        client.send(b"aaaa")
        client.send(b"bbbb")
        first = server.recv_view(timeout=5.0)
        assert server.recv(timeout=5.0) == b"bbbb"
        with pytest.raises(ValueError):
            bytes(first)

    def test_close_revokes_outstanding_view(self, tcp_pair, debug_mode):
        client, server = tcp_pair
        client.send(b"aaaa")
        view = server.recv_view(timeout=5.0)
        server.close()
        with pytest.raises(ValueError):
            bytes(view)

    def test_copies_taken_in_time_survive(self, tcp_pair, debug_mode):
        client, server = tcp_pair
        client.send(b"aaaa")
        client.send(b"bbbb")
        first = bytes(server.recv_view(timeout=5.0))
        server.recv_view(timeout=5.0)
        assert first == b"aaaa"

    def test_default_mode_keeps_documented_alias(self, tcp_pair):
        client, server = tcp_pair
        client.send(b"aaaa")
        client.send(b"bbbb")
        first = server.recv_view(timeout=5.0)
        server.recv_view(timeout=5.0)
        # Debug off: the stale view silently aliases the new frame — the
        # documented (and perf-default) hazard the flag exists to catch.
        assert bytes(first) == b"bbbb"
