"""TCP channel failure semantics: timeouts, poisoning, reconnects."""

import threading
import time

import pytest

from repro.errors import (
    ChannelClosedError,
    TransportError,
    TransportTimeoutError,
)
from repro.transport.tcp import ReconnectingTCPChannel, connect, listen


@pytest.fixture
def pair():
    """A connected (client, server) TCPChannel pair over loopback."""
    listener = listen()
    host, port = listener.address
    client = connect(host, port)
    server = listener.accept(timeout=5)
    yield client, server
    client.close()
    server.close()
    listener.close()


class TestTimeoutHygiene:
    def test_timeout_raises_distinct_type(self, pair):
        client, _ = pair
        with pytest.raises(TransportTimeoutError) as excinfo:
            client.recv(timeout=0.05)
        assert not excinfo.value.mid_frame
        assert not client.poisoned

    def test_socket_timeout_restored_after_timed_recv(self, pair):
        client, server = pair
        assert client._sock.gettimeout() is None
        with pytest.raises(TransportTimeoutError):
            client.recv(timeout=0.05)
        # The 0.05 deadline must not leak into later calls: an untimed
        # recv would otherwise spuriously time out.
        assert client._sock.gettimeout() is None
        server.send(b"late")
        assert client.recv(timeout=5) == b"late"

    def test_boundary_timeout_keeps_channel_usable(self, pair):
        client, server = pair
        for _ in range(3):
            with pytest.raises(TransportTimeoutError):
                client.recv(timeout=0.02)
        server.send(b"finally")
        assert client.recv(timeout=5) == b"finally"


class TestPoisoning:
    def test_mid_frame_timeout_poisons(self, pair):
        client, server = pair
        # A frame header promising 100 bytes, but only part of the body:
        # the client's read stops mid-frame.
        server._sock.sendall((100).to_bytes(4, "big") + b"partial")
        time.sleep(0.05)
        with pytest.raises(TransportTimeoutError) as excinfo:
            client.recv(timeout=0.1)
        assert excinfo.value.mid_frame
        assert client.poisoned

    def test_poisoned_channel_refuses_recv(self, pair):
        client, server = pair
        server._sock.sendall((100).to_bytes(4, "big") + b"partial")
        time.sleep(0.05)
        with pytest.raises(TransportTimeoutError):
            client.recv(timeout=0.1)
        # The rest of the frame arrives — too late, the stream cannot be
        # trusted to be at a boundary anymore.
        server._sock.sendall(b"x" * 93)
        with pytest.raises(TransportError, match="poisoned"):
            client.recv(timeout=1)

    def test_unpoisoned_partial_header_also_poisons(self, pair):
        client, server = pair
        server._sock.sendall(b"\x00\x00")  # half a length prefix
        time.sleep(0.05)
        with pytest.raises(TransportTimeoutError) as excinfo:
            client.recv(timeout=0.1)
        assert excinfo.value.mid_frame


class EchoServer:
    """Accepts one connection at a time and echoes frames back."""

    def __init__(self):
        self.listener = listen()
        self.address = self.listener.address
        self.accepted = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self):
        while not self._stop.is_set():
            try:
                channel = self.listener.accept(timeout=0.2)
            except TransportError:
                continue
            except Exception:
                return
            self.accepted += 1
            threading.Thread(
                target=self._echo, args=(channel,), daemon=True
            ).start()

    def _echo(self, channel):
        try:
            while True:
                channel.send(channel.recv(timeout=5))
        except Exception:
            channel.close()

    def stop(self):
        self._stop.set()
        self.listener.close()
        # Join the accept thread: while it is blocked in accept() the
        # kernel keeps the (closed-fd) socket listening, and a redial
        # in that window lands in a backlog nothing will ever accept.
        self._thread.join(timeout=2)


class TestReconnectingChannel:
    def test_transparent_when_healthy(self):
        server = EchoServer()
        host, port = server.address
        channel = ReconnectingTCPChannel(host, port, max_reconnects=2)
        channel.send(b"ping")
        assert channel.recv(timeout=5) == b"ping"
        assert channel.reconnects == 0
        channel.close()
        server.stop()

    def test_send_survives_peer_reset(self):
        server = EchoServer()
        host, port = server.address
        channel = ReconnectingTCPChannel(
            host, port, max_reconnects=3, base_delay=0.01
        )
        channel.send(b"one")
        assert channel.recv(timeout=5) == b"one"
        # Kill the server side of the current connection.
        channel._channel._sock.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                channel.send(b"two")
                break
            except TransportError:
                continue
        assert channel.reconnects >= 1
        assert channel.recv(timeout=5) == b"two"
        assert server.accepted == 2
        channel.close()
        server.stop()

    def test_budget_exhaustion_raises(self):
        server = EchoServer()
        host, port = server.address
        channel = ReconnectingTCPChannel(
            host, port, max_reconnects=2, base_delay=0.01
        )
        server.stop()
        channel._channel.close()  # simulate the break
        with pytest.raises(TransportError, match="budget"):
            channel.send(b"x")
        channel.close()

    def test_zero_budget_propagates_original_error(self):
        server = EchoServer()
        host, port = server.address
        channel = ReconnectingTCPChannel(host, port, max_reconnects=0)
        channel._channel.close()
        with pytest.raises(ChannelClosedError):
            channel.send(b"x")
        server.stop()

    def test_timeout_does_not_trigger_redial(self):
        server = EchoServer()
        host, port = server.address
        channel = ReconnectingTCPChannel(host, port, max_reconnects=3)
        with pytest.raises(TransportTimeoutError):
            channel.recv(timeout=0.05)
        assert channel.reconnects == 0
        channel.close()
        server.stop()

    def test_on_reconnect_callback_runs(self):
        server = EchoServer()
        host, port = server.address
        fresh = []
        channel = ReconnectingTCPChannel(
            host,
            port,
            max_reconnects=3,
            base_delay=0.01,
            on_reconnect=lambda ch: fresh.append(ch),
        )
        channel._channel._sock.close()
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                channel.send(b"hello")
                break
            except TransportError:
                continue
        assert fresh, "reconnect callback never ran"
        channel.close()
        server.stop()
