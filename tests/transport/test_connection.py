"""Unit tests for the RecordConnection protocol layer."""

import threading

import pytest

from repro.arch import SPARC_32, X86_64
from repro.errors import TransportError
from repro.pbio import FormatServer, IOContext, IOField
from repro.transport import RecordConnection, make_pipe


def point_fields():
    return [IOField("x", "double", 8, 0), IOField("y", "double", 8, 8)]


def connected_pair(sender_arch=SPARC_32, receiver_arch=X86_64, **kwargs):
    a, b = make_pipe()
    sender = RecordConnection(IOContext(sender_arch, **kwargs), a)
    receiver = RecordConnection(IOContext(receiver_arch, **kwargs), b)
    return sender, receiver


class TestEagerPush:
    def test_first_send_pushes_metadata(self):
        sender, receiver = connected_pair()
        fmt = sender.context.register_format("point", point_fields())
        sender.send(fmt, {"x": 1.0, "y": 2.0})
        decoded = receiver.recv(timeout=5)
        assert decoded.values == {"x": 1.0, "y": 2.0}
        assert sender.metadata_messages == 1
        assert sender.data_messages == 1

    def test_metadata_pushed_once_per_format(self):
        sender, receiver = connected_pair()
        fmt = sender.context.register_format("point", point_fields())
        for i in range(50):
            sender.send(fmt, {"x": float(i), "y": 0.0})
        for i in range(50):
            assert receiver.recv(timeout=5).values["x"] == float(i)
        assert sender.metadata_messages == 1
        assert sender.data_messages == 50

    def test_two_formats_two_pushes(self):
        sender, receiver = connected_pair()
        point = sender.context.register_format("point", point_fields())
        scalar = sender.context.register_format("scalar", [IOField("v", "integer", 4, 0)])
        sender.send(point, {"x": 0.0, "y": 0.0})
        sender.send(scalar, {"v": 7})
        assert receiver.recv(timeout=5).format_name == "point"
        assert receiver.recv(timeout=5).values == {"v": 7}
        assert sender.metadata_messages == 2

    def test_metadata_bytes_accounted_separately(self):
        sender, receiver = connected_pair()
        fmt = sender.context.register_format("point", point_fields())
        sender.send(fmt, {"x": 1.0, "y": 2.0})
        assert sender.metadata_bytes > 0
        assert sender.data_bytes > 0
        receiver.recv(timeout=5)


class TestPullOnMiss:
    def test_unknown_format_triggers_request(self):
        """A receiver that never saw the push asks for the metadata."""
        sender, receiver = connected_pair()
        fmt = sender.context.register_format("point", point_fields())
        # Bypass announce: send a bare data message, as if the receiver
        # joined a fan-out after the push happened.
        raw = sender.context.encode(fmt, {"x": 9.0, "y": 8.0})
        sender.channel.send(raw)

        result = {}

        def receive():
            result["record"] = receiver.recv(timeout=5)

        thread = threading.Thread(target=receive)
        thread.start()
        # The sender endpoint services the format request.
        assert sender.serve_protocol_once(timeout=5)
        thread.join(timeout=5)
        assert result["record"].values == {"x": 9.0, "y": 8.0}

    def test_order_preserved_across_resolution_stall(self):
        sender, receiver = connected_pair()
        fmt = sender.context.register_format("point", point_fields())
        raw1 = sender.context.encode(fmt, {"x": 1.0, "y": 0.0})
        raw2 = sender.context.encode(fmt, {"x": 2.0, "y": 0.0})
        sender.channel.send(raw1)
        sender.channel.send(raw2)

        received = []

        def receive():
            received.append(receiver.recv(timeout=5).values["x"])
            received.append(receiver.recv(timeout=5).values["x"])

        thread = threading.Thread(target=receive)
        thread.start()
        sender.serve_protocol_once(timeout=5)
        # Second record may trigger another request (already answered);
        # service any further protocol traffic without blocking long.
        sender.serve_protocol_once(timeout=0.2)
        thread.join(timeout=5)
        assert received == [1.0, 2.0]

    def test_request_for_unregistered_format_fails_loudly(self):
        sender, receiver = connected_pair()
        bogus_request = receiver.context.request_message(b"\x01" * 8)
        receiver.channel.send(bogus_request)
        with pytest.raises(TransportError, match="not registered"):
            sender.serve_protocol_once(timeout=5)


class TestSharedFormatServer:
    def test_server_resolution_avoids_in_band_traffic(self):
        server = FormatServer()
        a, b = make_pipe()
        sender = RecordConnection(IOContext(SPARC_32, format_server=server), a)
        receiver = RecordConnection(IOContext(X86_64, format_server=server), b)
        fmt = sender.context.register_format("point", point_fields())
        raw = sender.context.encode(fmt, {"x": 5.0, "y": 6.0})
        sender.channel.send(raw)  # no push, no request needed
        decoded = receiver.recv(timeout=5)
        assert decoded.values == {"x": 5.0, "y": 6.0}
        assert receiver.metadata_messages == 0


class TestEvolutionOverConnection:
    def test_expect_projects_onto_local_format(self):
        sender, receiver = connected_pair()
        v2 = sender.context.register_format(
            "track",
            point_fields() + [IOField("alt", "integer", 4, 16)],
            record_length=24,
        )
        receiver.context.register_format("track", point_fields())
        sender.send(v2, {"x": 1.0, "y": 2.0, "alt": 30000})
        decoded = receiver.recv(timeout=5, expect="track")
        assert decoded.values == {"x": 1.0, "y": 2.0}
