"""Concurrent use of one TCPChannel from multiple threads.

The documented contract (PROTOCOL.md §10): sends are serialized by an
internal lock so frames never interleave on the wire; concurrent recv
callers are serialized the same way, each receiving one whole frame in
arrival order; a timed recv that cannot get the read lock in time fails
with ``TransportTimeoutError`` instead of blocking indefinitely.
"""

import threading

import pytest

from repro.errors import TransportTimeoutError
from repro.transport import connect, listen

SENDERS = 8
FRAMES_PER_SENDER = 50


def tcp_pair(listener):
    client = connect(*listener.address)
    server = listener.accept(timeout=5)
    return client, server


class TestConcurrentSends:
    def test_frames_from_many_threads_never_interleave(self):
        with listen() as listener:
            client, server = tcp_pair(listener)
            # Payloads large enough that an unserialized sendall would
            # interleave across the socket buffer boundary.
            payloads = {
                sender: bytes([sender]) * 40_000 for sender in range(SENDERS)
            }
            threads = [
                threading.Thread(
                    target=lambda p=payloads[s]: [
                        client.send(p) for _ in range(FRAMES_PER_SENDER)
                    ]
                )
                for s in range(SENDERS)
            ]
            received = []
            collector = threading.Thread(
                target=lambda: [
                    received.append(server.recv(timeout=10))
                    for _ in range(SENDERS * FRAMES_PER_SENDER)
                ]
            )
            collector.start()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            collector.join()
            client.close()
            server.close()
        assert len(received) == SENDERS * FRAMES_PER_SENDER
        # Every frame must be exactly one sender's payload, uncorrupted.
        for message in received:
            assert len(message) == 40_000
            assert message == bytes([message[0]]) * 40_000


class TestConcurrentRecvs:
    def test_every_frame_received_exactly_once(self):
        with listen() as listener:
            client, server = tcp_pair(listener)
            total = 200
            for i in range(total):
                client.send(i.to_bytes(4, "big"))
            results = []
            results_lock = threading.Lock()

            def drain(count):
                for _ in range(count):
                    message = server.recv(timeout=10)
                    with results_lock:
                        results.append(int.from_bytes(message, "big"))

            readers = [
                threading.Thread(target=drain, args=(total // 4,))
                for _ in range(4)
            ]
            for reader in readers:
                reader.start()
            for reader in readers:
                reader.join()
            client.close()
            server.close()
        # No frame lost, duplicated, or torn between readers.
        assert sorted(results) == list(range(total))

    def test_timed_recv_fails_fast_while_another_reader_blocks(self):
        import time

        with listen() as listener:
            client, server = tcp_pair(listener)
            # Occupy the recv lock with a long blocking read first.
            holder = threading.Thread(target=lambda: server.recv(timeout=5))
            holder.start()
            time.sleep(0.1)  # let the holder take the recv lock
            with pytest.raises(TransportTimeoutError, match="timed out"):
                server.recv(timeout=0.1)
            client.send(b"unblock")
            holder.join()
            client.close()
            server.close()
