"""Ablation A1 — dynamic code generation versus interpreted conversion.

The paper attributes part of PBIO's receive-side speed to "custom
routines created on-the-fly through dynamic code generation".  This
ablation decodes identical heterogeneous payloads with:

- the generated converter (one specialized unpack, offsets baked in);
- the interpreted converter (per-field metadata walk per record);

across field counts from 4 to 128.  The gap *is* the DCG benefit, and it
widens with field count.  A second pair measures the one-time build cost
each approach pays (generation compiles source; interpretation just
closes over the plan).
"""

import time

import pytest

from repro import IOContext, SPARC_32, XML2Wire
from repro.pbio.codegen import make_generated_converter, make_interpreted_converter
from repro.pbio.encode import encode_record
from repro.workloads import SyntheticWorkload

FIELD_COUNTS = [4, 16, 64, 128]


def build(fields):
    workload = SyntheticWorkload(fields, mix="mixed")
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(workload.schema)
    fmt = context.lookup_format("Synthetic")
    payload = encode_record(fmt, workload.record())
    return fmt, payload


@pytest.mark.parametrize("fields", FIELD_COUNTS, ids=lambda f: f"{f}-fields")
def test_decode_generated(benchmark, fields):
    fmt, payload = build(fields)
    convert = make_generated_converter(fmt)
    benchmark(convert, payload)


@pytest.mark.parametrize("fields", FIELD_COUNTS, ids=lambda f: f"{f}-fields")
def test_decode_interpreted(benchmark, fields):
    fmt, payload = build(fields)
    convert = make_interpreted_converter(fmt)
    benchmark(convert, payload)


def test_generated_wins_and_gap_grows(benchmark):
    """Direct assertion of the ablation's two claims."""

    def ratio(fields, rounds=300):
        fmt, payload = build(fields)
        generated = make_generated_converter(fmt)
        interpreted = make_interpreted_converter(fmt)
        start = time.perf_counter()
        for _ in range(rounds):
            generated(payload)
        generated_time = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(rounds):
            interpreted(payload)
        return (time.perf_counter() - start) / generated_time

    small_ratio = ratio(4)
    large_ratio = ratio(128)
    assert large_ratio > 1.5, f"DCG gains only {large_ratio:.2f}x at 128 fields"
    benchmark.extra_info["interp_over_gen_4f"] = round(small_ratio, 2)
    benchmark.extra_info["interp_over_gen_128f"] = round(large_ratio, 2)
    fmt, payload = build(32)
    benchmark(make_generated_converter(fmt), payload)


@pytest.mark.parametrize("fields", FIELD_COUNTS, ids=lambda f: f"{f}-fields")
def test_encode_generated(benchmark, fields):
    """Sender-side DCG: the specialized encoder (see codegen.py)."""
    workload = SyntheticWorkload(fields, mix="mixed")
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(workload.schema)
    fmt = context.lookup_format("Synthetic")
    record = workload.record()
    benchmark(lambda: encode_record(fmt, record, mode="generated"))


@pytest.mark.parametrize("fields", FIELD_COUNTS, ids=lambda f: f"{f}-fields")
def test_encode_interpreted(benchmark, fields):
    """Sender-side baseline: the plan-walking encoder."""
    workload = SyntheticWorkload(fields, mix="mixed")
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(workload.schema)
    fmt = context.lookup_format("Synthetic")
    record = workload.record()
    benchmark(lambda: encode_record(fmt, record, mode="interpreted"))


@pytest.mark.parametrize("fields", [16, 128], ids=lambda f: f"{f}-fields")
def test_converter_build_cost_generated(benchmark, fields):
    """The one-time cost DCG pays: generate + compile Python source."""
    fmt, _ = build(fields)

    def make():
        return make_generated_converter(fmt)

    benchmark(make)


@pytest.mark.parametrize("fields", [16, 128], ids=lambda f: f"{f}-fields")
def test_converter_build_cost_interpreted(benchmark, fields):
    fmt, _ = build(fields)

    def make():
        return make_interpreted_converter(fmt)

    benchmark(make)
