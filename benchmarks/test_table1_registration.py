"""Experiment T1 — the paper's Table 1: format registration costs.

Paper (SPARC-class hardware, 2001):

    Structure Size   Encoded Size      Registration time (ms)
    (bytes)          PBIO   xml2wire   PBIO    xml2wire
    32               72     72         .102    .191
    52               104    104        .110    .225
    180              268    268        .158    .304

What must reproduce (shape, not absolute ms):

- xml2wire registration costs a small constant factor over direct PBIO
  registration (paper: 1.9-2.1x) — the price of parsing XML at run time;
- both grow with structure complexity;
- the Encoded Size columns are *identical* between the two paths,
  because xml2wire changes discovery only, never the wire format.

Run ``python benchmarks/report.py`` for the assembled table.
"""

import pytest

from repro import IOContext, SPARC_32
from repro.workloads import AirlineWorkload

from benchmarks.conftest import PBIO_REGISTRARS, TABLE1_ROWS, xml2wire_register


@pytest.mark.parametrize("label,schema,format_name", TABLE1_ROWS,
                         ids=[r[0] for r in TABLE1_ROWS])
def test_registration_xml2wire(benchmark, label, schema, format_name):
    """xml2wire column: parse the XML document + register with PBIO."""
    fmt = benchmark(xml2wire_register, schema)
    assert fmt.name == format_name


@pytest.mark.parametrize("label", [r[0] for r in TABLE1_ROWS])
def test_registration_pbio_direct(benchmark, label):
    """PBIO column: register precompiled IOField metadata directly."""
    fmt = benchmark(PBIO_REGISTRARS[label])
    assert fmt.record_length > 0


def test_encoded_sizes_identical_between_paths(benchmark):
    """Table 1's core invariant: Encoded Size (PBIO) == Encoded Size
    (xml2wire) for every structure, on identical records."""
    workload = AirlineWorkload(seed=1204)
    records = {
        "A/32B": workload.record_a(),
        "B/52B": workload.record_b(),
        "CD/180B": workload.record_cd(),
    }

    def measure():
        sizes = {}
        for label, schema, format_name in TABLE1_ROWS:
            via_xml = xml2wire_register(schema)
            direct = PBIO_REGISTRARS[label]()
            record = records[label]
            sender_a = IOContext(SPARC_32)
            sender_a.adopt_format(via_xml)
            sender_b = IOContext(SPARC_32)
            sender_b.adopt_format(direct)
            sizes[label] = (
                len(sender_a.encode(format_name, record)),
                len(sender_b.encode(format_name, record)),
            )
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    for label, (via_xml, direct) in sizes.items():
        assert via_xml == direct, f"{label}: xml2wire and PBIO encoded sizes differ"
