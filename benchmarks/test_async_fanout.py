"""Async fan-out — metadata serving throughput, threaded vs async plane.

Paper (§1): scalability to many information clients "implies the need
to reduce per-client or per-source processing".  The threaded
:class:`MetadataServer` pays a thread spawn plus a TCP connection per
request; the asyncio plane amortizes both — N clients hold N keep-alive
connections on one event loop and pipeline their requests.

The sweep times the same total request volume at 1/10/100/1000
concurrent clients against both planes serving the same catalog, and
prints requests/second side by side.  Acceptance: at 100 concurrent
clients the async plane must clear at least 3x the threaded throughput.

CI smoke (about 30 seconds) runs only the low client counts::

    python -m pytest -q benchmarks/test_async_fanout.py -s -k "1-clients or 10-clients"
"""

import asyncio
import threading
import time

import pytest

from repro import MetadataServer
from repro.errors import DiscoveryError
from repro.aio import AsyncMetadataClient, AsyncMetadataServer
from repro.metaserver import MetadataCatalog, http_get
from repro.workloads import ASDOFF_B_SCHEMA

CLIENT_COUNTS = [1, 10, 100, 1000]

#: Total requests per sweep point, split evenly across the clients.
TOTAL_REQUESTS = 1000

#: Acceptance floor: async over threaded throughput at 100 clients.
REQUIRED_SPEEDUP_AT_100 = 3.0


def fresh_catalog():
    catalog = MetadataCatalog()
    catalog.publish_schema("/doc.xsd", ASDOFF_B_SCHEMA)
    return catalog


def threaded_plane_rps(clients, per_client):
    """Thread-per-client workers, one connection per request (the sync
    client's shape), against the thread-per-connection server."""
    with MetadataServer(catalog=fresh_catalog()) as server:
        url = server.url_for("/doc.xsd")
        ready = threading.Barrier(clients + 1)

        def worker(index):
            ready.wait()
            # Above ~100 clients the bare connect storm would spend
            # minutes in SYN retransmits against the backlog-16 listener;
            # a short ramp keeps the point measurable (it is still slow).
            # At or below 100 the storm itself is the scenario under
            # test.  Retries mimic a real discovery client, and the time
            # they burn counts against the measured throughput.
            if clients > 100:
                time.sleep((index % 97) * 0.003)
            for _ in range(per_client):
                for attempt in range(6):
                    try:
                        http_get(url, timeout=10.0)
                        break
                    except DiscoveryError:
                        if attempt == 5:
                            raise
                        time.sleep(0.1 * (attempt + 1))

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        ready.wait()
        started = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
    return clients * per_client / elapsed


def async_plane_rps(clients, per_client):
    """N concurrent async clients, each pipelining its batch over one
    keep-alive connection, against the asyncio server."""

    async def scenario():
        async with AsyncMetadataServer(catalog=fresh_catalog()) as server:
            url = server.url_for("/doc.xsd")
            pool = [AsyncMetadataClient(pool_size=1, timeout=30.0)
                    for _ in range(clients)]
            started = time.perf_counter()
            await asyncio.gather(
                *(client.get_many([url] * per_client) for client in pool)
            )
            elapsed = time.perf_counter() - started
            for client in pool:
                await client.close()
            return elapsed

    return clients * per_client / asyncio.run(scenario())


def report(title, lines):
    print(f"\n== {title} ==")
    for label, value in lines:
        print(f"  {label:<32} {value}")


@pytest.mark.parametrize("clients", CLIENT_COUNTS, ids=lambda c: f"{c}-clients")
def test_async_fanout(clients):
    # Every client gets at least a small batch: the sweep measures
    # fan-out of *sessions*, and a session of one request would reduce
    # the 1000-client point to pure connect-storm noise on both planes.
    per_client = max(4, TOTAL_REQUESTS // clients)
    threaded_rps = threaded_plane_rps(clients, per_client)
    async_rps = async_plane_rps(clients, per_client)
    speedup = async_rps / threaded_rps
    report(
        f"metadata fan-out @ {clients} concurrent clients"
        f" ({per_client} requests each)",
        [
            ("threaded plane (req/s)", f"{threaded_rps:,.0f}"),
            ("async plane (req/s)", f"{async_rps:,.0f}"),
            ("async speedup", f"{speedup:.1f}x"),
        ],
    )
    assert async_rps > 0 and threaded_rps > 0
    if clients == 100:
        # The tentpole's acceptance criterion: pipelined keep-alive
        # connections beat thread-plus-connection-per-request by >= 3x.
        assert speedup >= REQUIRED_SPEEDUP_AT_100, (
            f"async plane only {speedup:.1f}x threaded at 100 clients"
        )
