"""Experiment C8 — bulk scientific arrays: the HPC case, with numpy.

The paper's lead workload class is "high performance codes moving
scientific or engineering data".  For a 1 MiB double array per record,
the wire-format pecking order the paper describes becomes extreme:

- NDR + numpy: one vectorized conversion on encode, a zero-copy view on
  receive (`array_view`), deferred/vectorized conversion on use;
- NDR + lists: per-element Python conversion both ways (the non-bulk
  API, for scale);
- XDR (generated stubs): canonical conversion of every element, both
  directions, plus list materialization;
- text XML: thousands of decimal conversions per record.

``test_homogeneous_send_is_one_copy`` pins the headline NDR property:
when sender dtype matches the wire, encode degenerates to a buffer copy.
"""

import numpy
import pytest

from repro import IOContext, SPARC_32, X86_64, XML2Wire
from repro.arch import NATIVE
from repro.pbio import IOField, RecordView
from repro.pbio.bulk import array_view, native_copy
from repro.pbio.encode import encode_record

ELEMENTS = 128 * 1024  # 1 MiB of doubles


def chem_format(arch):
    context = IOContext(arch)
    return context, context.register_format(
        "chem",
        [
            IOField("step", "unsigned integer", 4, 0),
            IOField("n", "integer", 4, 4),
            IOField("conc", "double[n]", 8, 8),
        ],
        record_length=16,
    )


@pytest.fixture(scope="module")
def data():
    return numpy.linspace(0.0, 1.0, ELEMENTS)


def test_bulk_ndr_numpy_roundtrip(benchmark, data):
    """Encode ndarray -> payload -> zero-copy view -> native copy."""
    _, fmt = chem_format(SPARC_32)
    record = {"step": 1, "conc": data}

    def roundtrip():
        payload = encode_record(fmt, record)
        return native_copy(array_view(RecordView(fmt, payload), "conc"))

    result = benchmark(roundtrip)
    assert len(result) == ELEMENTS


def test_bulk_ndr_numpy_view_only(benchmark, data):
    """Receive-side cost when the consumer uses the wire array in place
    (homogeneous cluster: dtype already native)."""
    _, fmt = chem_format(NATIVE)
    payload = encode_record(fmt, {"step": 1, "conc": data})

    def receive():
        return array_view(RecordView(fmt, payload), "conc")

    array = benchmark(receive)
    assert array.dtype.newbyteorder("=") == numpy.dtype("f8").newbyteorder("=")


def test_bulk_ndr_list_roundtrip(benchmark, data):
    """The same exchange through plain lists, for scale."""
    _, fmt = chem_format(SPARC_32)
    record = {"step": 1, "conc": list(data)}
    from repro.pbio.codegen import make_generated_converter

    convert = make_generated_converter(fmt)

    def roundtrip():
        return convert(encode_record(fmt, record))

    result = benchmark(roundtrip)
    assert len(result["conc"]) == ELEMENTS


def test_bulk_xdr_generated(benchmark, data):
    from repro.wire.xdrgen import make_generated_xdr

    _, fmt = chem_format(SPARC_32)
    encode, decode = make_generated_xdr(fmt)
    record = {"step": 1, "n": ELEMENTS, "conc": list(data)}

    def roundtrip():
        return decode(encode(record))

    benchmark(roundtrip)


def test_homogeneous_send_is_one_copy(benchmark, data):
    """With matching dtype, NDR+numpy encode is copy-bound, not
    per-element-bound: at least 10x faster than the list path, and
    within a small multiple of a raw buffer copy of the same bytes."""
    import time

    _, fmt = chem_format(NATIVE)
    array_record = {"step": 1, "conc": data}
    list_record = {"step": 1, "conc": list(data)}

    def timed(func, rounds=100):
        start = time.perf_counter()
        for _ in range(rounds):
            func()
        return (time.perf_counter() - start) / rounds

    array_time = timed(lambda: encode_record(fmt, array_record))
    list_time = timed(lambda: encode_record(fmt, list_record))
    raw = data.tobytes()
    memcpy_time = timed(lambda: bytearray(raw))  # a true 1 MiB copy

    # The list path is itself one C-level struct.pack(*args) call, so
    # the encode-side gap is a few-x (argument expansion vs buffer copy);
    # the dramatic bulk win is receive-side (see the view benchmarks:
    # microseconds vs milliseconds).
    assert array_time * 2.5 < list_time, (
        f"ndarray encode {array_time * 1e6:.0f}us vs list encode "
        f"{list_time * 1e6:.0f}us — expected >=2.5x"
    )
    benchmark.extra_info["list_over_ndarray"] = round(list_time / array_time, 1)
    benchmark.extra_info["ndarray_over_memcpy"] = round(
        array_time / max(memcpy_time, 1e-9), 1
    )
    benchmark(lambda: encode_record(fmt, array_record))
