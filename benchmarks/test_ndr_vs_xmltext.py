"""Experiment C2 — NDR versus the text-XML wire format.

Paper claim (§1): "when transmitting XML data, our NDR-based approach to
data transmission demonstrates performance an entire order of magnitude
larger than existing, text-based XML transmission approaches."

Text XML pays three ways: binary→decimal-text conversion on send, a full
XML parse plus text→binary conversion on receive, and 6-8x more bytes on
the wire.  These benchmarks measure the marshal+unmarshal round trip on
the paper's Structure B and on bulk numeric payloads.
"""

import pytest

from repro import IOContext, SPARC_32, X86_64, XMLTextCodec, XML2Wire
from repro.workloads import ASDOFF_B_SCHEMA, SyntheticWorkload

PAYLOADS = [1024, 8192]


def setup_ndr(schema, format_name):
    sender = IOContext(SPARC_32)
    XML2Wire(sender).register_schema(schema)
    fmt = sender.lookup_format(format_name)
    receiver = IOContext(X86_64)
    receiver.learn_format(fmt.to_wire_metadata())
    return sender, fmt, receiver


class TestStructureB:
    def test_xmltext_roundtrip(self, benchmark, airline):
        context = IOContext(SPARC_32)
        XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
        codec = XMLTextCodec(context.lookup_format("ASDOffEvent"))
        record = airline.record_b()

        def roundtrip():
            return codec.decode(codec.encode(record))

        assert benchmark(roundtrip) == record


@pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: f"{p // 1024}KiB")
class TestBulkNumeric:
    def test_xmltext(self, benchmark, payload):
        workload = SyntheticWorkload(4, mix="numeric", array_field=True)
        record = workload.record_of_payload(payload)
        context = IOContext(SPARC_32)
        XML2Wire(context).register_schema(workload.schema)
        codec = XMLTextCodec(context.lookup_format("Synthetic"))

        def roundtrip():
            return codec.decode(codec.encode(record))

        benchmark(roundtrip)


def test_order_of_magnitude_gap(benchmark, airline):
    """The 10x claim asserted directly on Structure B."""
    import time

    record = airline.record_b()
    sender, fmt, receiver = setup_ndr(ASDOFF_B_SCHEMA, "ASDOffEvent")
    receiver.decode(sender.encode(fmt, record))
    codec = XMLTextCodec(fmt)

    rounds = 500
    start = time.perf_counter()
    for _ in range(rounds):
        receiver.decode(sender.encode(fmt, record))
    ndr_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        codec.decode(codec.encode(record))
    xml_time = time.perf_counter() - start

    assert xml_time > 10 * ndr_time, (
        f"NDR {ndr_time:.3f}s vs text XML {xml_time:.3f}s — expected >=10x gap"
    )
    benchmark.extra_info["xml_over_ndr"] = round(xml_time / ndr_time, 1)
    benchmark(lambda: receiver.decode(sender.encode(fmt, record)))
