"""Experiment C5 — registration time grows with structure size.

Paper (§5): "the time required to parse metadata grows proportionally to
the structure size.  This indicates that the raw overhead of xml2wire
does not impose unduly on the metadata discovery and registration
process."

We sweep synthetic formats from 2 to 256 fields through both
registration paths and assert near-linear growth for xml2wire (the
sub-quadratic check is the reproducible part; constants are hardware).
"""

import time

import pytest

from repro import IOContext, SPARC_32, XML2Wire
from repro.pbio import IOField
from repro.workloads import make_synthetic_schema

FIELD_COUNTS = [2, 8, 32, 128, 256]


@pytest.mark.parametrize("fields", FIELD_COUNTS, ids=lambda f: f"{f}-fields")
def test_xml2wire_registration_scaling(benchmark, fields):
    schema = make_synthetic_schema(fields, mix="integers")

    def register():
        return XML2Wire(IOContext(SPARC_32)).register_schema(schema)

    formats = benchmark(register)
    assert len(formats[0].fields) == fields


@pytest.mark.parametrize("fields", FIELD_COUNTS, ids=lambda f: f"{f}-fields")
def test_pbio_registration_scaling(benchmark, fields):
    io_fields = [IOField(f"f{i}", "integer", 4, 4 * i) for i in range(fields)]

    def register():
        return IOContext(SPARC_32).register_format(
            "Synthetic", list(io_fields), record_length=4 * fields
        )

    fmt = benchmark(register)
    assert len(fmt.fields) == fields


def test_growth_is_near_linear(benchmark):
    """Quadratic blowup would sink the paper's 'tolerable' argument:
    32x the fields must cost well under 32^2/4 the time."""

    def time_registration(fields, rounds=20):
        schema = make_synthetic_schema(fields, mix="integers")
        start = time.perf_counter()
        for _ in range(rounds):
            XML2Wire(IOContext(SPARC_32)).register_schema(schema)
        return (time.perf_counter() - start) / rounds

    small = time_registration(8)
    large = time_registration(256)
    ratio = large / small
    assert ratio < 160, f"256/8 field registration ratio {ratio:.0f}x suggests superlinear cost"
    benchmark.extra_info["ratio_256_over_8_fields"] = round(ratio, 1)
    schema = make_synthetic_schema(8, mix="integers")
    benchmark(lambda: XML2Wire(IOContext(SPARC_32)).register_schema(schema))
