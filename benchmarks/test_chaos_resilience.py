"""Chaos benchmark — resilience of discovery under injected faults.

The acceptance scenario for the fault-injection tentpole: with a
metadata server failing half its requests, a DiscoveryChain backed by a
retrying MetadataClient must complete 100 discoveries with zero
caller-visible errors; with the server fully down, discovery must
degrade to the compiled-in source within the retry budget instead of
hanging.  The report prints attempt counts, stale serves and breaker
trips so regressions in the resilience layer are visible as numbers,
not just green checkmarks.

All fault schedules are seeded (CHAOS_SEED) — rerunning produces the
same faults, the same retries, the same counters.
"""

import time

from repro import (
    CompiledSource,
    DiscoveryChain,
    FlakyMetadataServer,
    MetadataClient,
    MetadataServer,
    RetryPolicy,
    URLSource,
)
from repro.faults import ServerFaultPlan
from repro.workloads import ASDOFF_B_SCHEMA

CHAOS_SEED = 20_260_806
DISCOVERIES = 100


def chaos_client(**kwargs):
    kwargs.setdefault("timeout", 2.0)
    kwargs.setdefault(
        "retry", RetryPolicy(max_attempts=6, base_delay=0.001, cap_delay=0.002)
    )
    kwargs.setdefault("sleep", lambda seconds: None)
    kwargs.setdefault("seed", CHAOS_SEED)
    return MetadataClient(**kwargs)


def report(title, lines):
    print(f"\n== {title} ==")
    for label, value in lines:
        print(f"  {label:<32} {value}")


def test_flaky_server_fifty_percent(capsys):
    """100 discoveries against a 50%-failing server: zero visible errors."""
    plan = ServerFaultPlan(seed=CHAOS_SEED, error=0.5)
    with FlakyMetadataServer(plan=plan) as server:
        url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
        client = chaos_client(ttl=0, breaker_threshold=50)
        chain = DiscoveryChain(
            [URLSource(url, client), CompiledSource(ASDOFF_B_SCHEMA)]
        )
        errors = 0
        degraded = 0
        started = time.perf_counter()
        for _ in range(DISCOVERIES):
            try:
                result = chain.discover()
            except Exception:
                errors += 1
                continue
            degraded += bool(result.degraded)
        elapsed = time.perf_counter() - started

    attempts = client.fetches + client.retries
    with capsys.disabled():
        report(
            f"flaky server (50% 5xx), {DISCOVERIES} discoveries",
            [
                ("caller-visible errors", errors),
                ("degraded to compiled fallback", degraded),
                ("network attempts", attempts),
                ("retries beyond first attempt", client.retries),
                ("server faults injected", server.faults_injected),
                ("stale serves", client.stale_serves),
                ("breaker trips", client.breaker_trips),
                ("wall time", f"{elapsed:.3f}s"),
            ],
        )
    assert errors == 0
    assert client.retries > 0
    assert server.faults_injected > 0


def test_stale_serve_bridges_outage(capsys):
    """Cached-but-expired metadata keeps consumers alive through an outage."""
    clock_now = [0.0]
    client = chaos_client(ttl=5, clock=lambda: clock_now[0])
    server = FlakyMetadataServer().start()
    url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
    client.get(url)  # warm
    server.stop()
    clock_now[0] += 10  # entry now expired, server gone
    stale_ok = 0
    for _ in range(DISCOVERIES):
        result = client.get(url)
        stale_ok += bool(result.stale)
    with capsys.disabled():
        report(
            f"server down, {DISCOVERIES} fetches from expired cache",
            [
                ("stale serves", client.stale_serves),
                ("fresh fetches", client.fetches),
                ("breaker trips", client.breaker_trips),
            ],
        )
    assert stale_ok == DISCOVERIES
    assert client.breaker_trips >= 1  # the breaker shielded the dead host


def test_fully_down_degrades_within_budget(capsys):
    """A dead server must cost a bounded delay, then compiled fallback."""
    server = MetadataServer().start()
    url = server.publish_schema("/s.xsd", ASDOFF_B_SCHEMA)
    server.stop()
    client = chaos_client(
        ttl=0,
        timeout=0.5,
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, cap_delay=0.05),
        sleep=time.sleep,  # real backoff: measure the true budget
    )
    chain = DiscoveryChain([URLSource(url, client), CompiledSource(ASDOFF_B_SCHEMA)])
    started = time.perf_counter()
    result = chain.discover()
    elapsed = time.perf_counter() - started
    with capsys.disabled():
        report(
            "server fully down, one discovery",
            [
                ("source", result.source),
                ("attempts", client.retries + 1),
                ("degraded", result.degraded),
                ("time to fallback", f"{elapsed * 1e3:.1f}ms"),
            ],
        )
    assert result.source == "compiled:builtin"
    assert elapsed < 1.0
