#!/usr/bin/env python
"""Regenerate every table and quantified claim of the paper, side by side.

Prints:

- **Table 1** — format registration costs (PBIO vs xml2wire) for the
  three Appendix A structures, with the paper's numbers alongside;
- **Claims C1-C3** — NDR vs XDR vs text XML round-trip performance and
  encoded sizes;
- **Claim C4** — amortization of registration cost over message count;
- **Claim C5** — registration-time scaling with structure size;
- **Claim C6** — discovery cost per source, including the fallback path;
- **Ablation A1** — generated vs interpreted conversion.

Run:  python benchmarks/report.py [--quick]

With ``--pr5`` the script instead runs the zero-copy hot-path suite
(allocation churn A/B, batched-send throughput A/B, pool steady state —
see :mod:`benchmarks.test_zero_copy`) and writes ``BENCH_PR5.json``
next to this file; ``--check`` additionally exits non-zero if a result
regresses past the acceptance floors, which is what CI's perf-smoke job
runs.

With ``--pr7`` it runs the columnar bulk-streaming suite (end-to-end
per-record NDR vs columnar batch throughput over TCP, plus the
codec-only A/B — see :mod:`benchmarks.test_columnar`) and writes
``BENCH_PR7.json``; ``--check`` gates on the ≥10x batch speedup floor.

With ``--pr8`` it runs the multi-core serving plane suite (worker-pool
fan-out throughput at 1/2/4 workers, shm vs loopback-TCP round-trip
latency at 4 KiB — see :mod:`benchmarks.test_mp_scaling`) and writes
``BENCH_PR8.json``; ``--check`` gates on the ≥1.8x scaling floor where
the host has ≥4 cores and the ≥3x shm latency win where it has ≥2 —
the JSON always records the core count the numbers were taken on.

With ``--pr10`` it runs the instance-based lazy-binding suite (fused
decode+project vs interpreted projection on evolved records, bounded
converter-cache churn with 10k distinct formats — see
:mod:`benchmarks.test_lazy_binding`) and writes ``BENCH_PR10.json``;
``--check`` gates on the ≥5x fused speedup floor at batch ≥64, the
cache-size-at-cap invariant, and the ≥99% steady-state hit rate.
"""

from __future__ import annotations

import statistics
import sys
import time

from repro import (
    CompiledSource,
    DiscoveryChain,
    FileSource,
    IOContext,
    MetadataClient,
    MetadataServer,
    SPARC_32,
    URLSource,
    X86_64,
    XDRCodec,
    XMLTextCodec,
    XML2Wire,
)
from repro.pbio.codegen import make_generated_converter, make_interpreted_converter
from repro.pbio.encode import encode_record
from repro.workloads import (
    ASDOFF_A_SCHEMA,
    ASDOFF_B_SCHEMA,
    ASDOFF_CD_SCHEMA,
    AirlineWorkload,
    SyntheticWorkload,
    make_synthetic_schema,
)

sys.path.insert(0, ".")
from benchmarks.conftest import (  # noqa: E402
    PBIO_REGISTRARS,
    TABLE1_ROWS,
    xml2wire_register,
)

QUICK = "--quick" in sys.argv
ROUNDS = 50 if QUICK else 300
MSG_ROUNDS = 300 if QUICK else 2000


def best_of(func, rounds):
    """Median of per-call times over ``rounds`` calls (milliseconds)."""
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        times.append((time.perf_counter() - start) * 1e3)
    return statistics.median(times)


def heading(title):
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def table1():
    heading("Table 1 — format registration costs (reference arch: sparc_32)")
    paper = {
        "A/32B": (32, 72, 72, 0.102, 0.191),
        "B/52B": (52, 104, 104, 0.110, 0.225),
        "CD/180B": (180, 268, 268, 0.158, 0.304),
    }
    workload = AirlineWorkload(seed=1204)
    records = {
        "A/32B": workload.record_a(),
        "B/52B": workload.record_b(),
        "CD/180B": workload.record_cd(),
    }
    print(f"{'struct':<9}{'size B':>7} | {'enc pbio':>9}{'enc xml2w':>10} | "
          f"{'reg pbio ms':>12}{'reg xml2w ms':>13}{'ratio':>7} | paper ratio")
    for label, schema, format_name in TABLE1_ROWS:
        via_xml = xml2wire_register(schema)
        direct = PBIO_REGISTRARS[label]()
        sender = IOContext(SPARC_32)
        sender.adopt_format(via_xml)
        enc_xml = len(sender.encode(format_name, records[label]))
        sender_direct = IOContext(SPARC_32)
        sender_direct.adopt_format(direct)
        enc_pbio = len(sender_direct.encode(format_name, records[label]))
        t_xml = best_of(lambda s=schema: xml2wire_register(s), ROUNDS)
        t_pbio = best_of(PBIO_REGISTRARS[label], ROUNDS)
        struct_size = paper[label][0]
        paper_ratio = paper[label][4] / paper[label][3]
        print(f"{label:<9}{struct_size:>7} | {enc_pbio:>9}{enc_xml:>10} | "
              f"{t_pbio:>12.3f}{t_xml:>13.3f}{t_xml / t_pbio:>7.2f} | "
              f"{paper_ratio:.2f}")
    print("\npaper encoded sizes were 72/104/268 with its (unpublished) record")
    print("contents and header; ours differ in absolute bytes but are exactly")
    print("EQUAL between the PBIO and xml2wire columns, which is the result.")


def claims_performance():
    heading("Claims C1/C2 — per-message round trip: NDR vs XDR vs text XML")
    workload = AirlineWorkload(seed=7)
    record = workload.record_b()
    sender = IOContext(SPARC_32)
    XML2Wire(sender).register_schema(ASDOFF_B_SCHEMA)
    fmt = sender.lookup_format("ASDOffEvent")
    receiver = IOContext(X86_64)
    receiver.learn_format(fmt.to_wire_metadata())
    receiver.decode(sender.encode(fmt, record))
    homo_receiver = IOContext(SPARC_32)
    homo_receiver.learn_format(fmt.to_wire_metadata())
    homo_receiver.decode(sender.encode(fmt, record))
    xdr = XDRCodec(fmt)
    xml = XMLTextCodec(fmt)
    from repro.wire import CDRCodec
    from repro.wire.xdrgen import make_generated_xdr

    cdr = CDRCodec(fmt)
    xdr_gen_encode, xdr_gen_decode = make_generated_xdr(fmt)

    rows = [
        ("NDR homogeneous", lambda: homo_receiver.decode(sender.encode(fmt, record))),
        ("NDR heterogeneous", lambda: receiver.decode(sender.encode(fmt, record))),
        ("CDR (IIOP)", lambda: cdr.decode(cdr.encode(record))),
        ("XDR interpreted", lambda: xdr.decode(xdr.encode(record))),
        ("XDR generated", lambda: xdr_gen_decode(xdr_gen_encode(record))),
        ("text XML", lambda: xml.decode(xml.encode(record))),
    ]
    baseline = None
    print(f"{'system':<20}{'us/msg':>10}{'vs NDR het.':>13}")
    results = {}
    for name, func in rows:
        per_msg = best_of(func, MSG_ROUNDS) * 1e3  # microseconds
        results[name] = per_msg
        if name == "NDR heterogeneous":
            baseline = per_msg
    for name, per_msg in results.items():
        print(f"{name:<20}{per_msg:>10.1f}{per_msg / baseline:>12.1f}x")
    print(f"\npaper: XDR slower by >50% -> measured "
          f"{results['XDR generated'] / results['NDR heterogeneous']:.1f}x "
          f"(vs compiled rpcgen-style stubs; "
          f"{results['XDR interpreted'] / results['NDR heterogeneous']:.1f}x "
          f"vs metadata-walking XDR)")
    print(f"paper: text XML ~an order of magnitude slower -> measured "
          f"{results['text XML'] / results['NDR heterogeneous']:.1f}x")


def claim_sizes():
    heading("Claim C3 — encoded sizes (payloads, no framing)")
    workload = AirlineWorkload(seed=7)
    record = workload.record_b()
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
    fmt = context.lookup_format("ASDOffEvent")
    from repro.wire import CDRCodec

    ndr = len(encode_record(fmt, record))
    cdr = len(CDRCodec(fmt).encode(record))
    xdr = len(XDRCodec(fmt).encode(record))
    xml = len(XMLTextCodec(fmt).encode(record))
    print(f"{'wire format':<12}{'bytes':>8}{'vs NDR':>9}")
    for name, size in (("NDR", ndr), ("CDR", cdr), ("XDR", xdr), ("text XML", xml)):
        print(f"{name:<12}{size:>8}{size / ndr:>8.1f}x")
    print(f"\npaper: XML expansion 6-8x typical -> measured {xml / ndr:.1f}x "
          f"on Structure B")


def claim_amortization():
    heading("Claim C4 — registration cost amortizes over message count")
    workload = AirlineWorkload(seed=7)
    record = workload.record_b()

    def session(register, count):
        fmt = register()
        sender = IOContext(SPARC_32)
        fmt = sender.adopt_format(fmt)
        receiver = IOContext(X86_64)
        receiver.learn_format(fmt.to_wire_metadata())
        for _ in range(count):
            receiver.decode(sender.encode(fmt, record))

    def xml_register():
        return XML2Wire(IOContext(SPARC_32)).register_schema(ASDOFF_B_SCHEMA)[0]

    pbio_register = PBIO_REGISTRARS["B/52B"]
    print(f"{'N messages':>10}{'xml2wire ms':>13}{'compiled ms':>13}{'overhead':>10}")
    for count in (1, 10, 100, 1000, 10000):
        rounds = max(3, min(20, 2000 // max(count, 1)))
        t_xml = best_of(lambda: session(xml_register, count), rounds)
        t_pbio = best_of(lambda: session(pbio_register, count), rounds)
        overhead = t_xml / t_pbio - 1
        print(f"{count:>10}{t_xml:>13.2f}{t_pbio:>13.2f}{overhead:>9.0%}")
    print("\npaper: 'costs do not recur with each message exchange' -> the")
    print("whole-session overhead of XML metadata vanishes as N grows.")


def claim_scaling():
    heading("Claim C5 — registration time grows ~proportionally with size")
    print(f"{'fields':>7}{'xml2wire ms':>13}{'pbio ms':>10}{'xml/pbio':>10}")
    from repro.pbio import IOField

    for fields in (2, 8, 32, 128, 256):
        schema = make_synthetic_schema(fields, mix="integers")
        io_fields = [IOField(f"f{i}", "integer", 4, 4 * i) for i in range(fields)]
        t_xml = best_of(
            lambda s=schema: XML2Wire(IOContext(SPARC_32)).register_schema(s),
            max(5, ROUNDS // (1 + fields // 16)),
        )
        t_pbio = best_of(
            lambda f=io_fields, n=fields: IOContext(SPARC_32).register_format(
                "S", list(f), record_length=4 * n
            ),
            max(5, ROUNDS // (1 + fields // 16)),
        )
        print(f"{fields:>7}{t_xml:>13.3f}{t_pbio:>10.3f}{t_xml / t_pbio:>10.2f}")


def claim_discovery():
    heading("Claim C6 — discovery cost per source (+ fallback)")
    with MetadataServer() as server:
        url = server.publish_schema("/schemas/asdoff.xsd", ASDOFF_B_SCHEMA)
        import tempfile, os

        handle, path = tempfile.mkstemp(suffix=".xsd")
        with os.fdopen(handle, "w") as f:
            f.write(ASDOFF_B_SCHEMA)
        warm_client = MetadataClient(ttl=3600)
        warm_client.get_schema(url)
        sources = [
            ("http (cold)", lambda: DiscoveryChain(
                [URLSource(url, MetadataClient(ttl=0))]).discover()),
            ("http (cached)", lambda: DiscoveryChain(
                [URLSource(url, warm_client)]).discover()),
            ("local file", lambda: DiscoveryChain(
                [FileSource(path)]).discover()),
            ("compiled-in", lambda c=CompiledSource(ASDOFF_B_SCHEMA):
                DiscoveryChain([c]).discover()),
        ]
        print(f"{'source':<16}{'ms/discovery':>13}")
        for name, func in sources:
            rounds = 30 if "http (cold)" in name else ROUNDS
            print(f"{name:<16}{best_of(func, rounds):>13.3f}")
        os.unlink(path)

    # Fallback path with the server gone.
    with MetadataServer() as server:
        dead = server.url_for("/schemas/asdoff.xsd")
    chain = DiscoveryChain(
        [URLSource(dead, MetadataClient(timeout=0.1)), CompiledSource(ASDOFF_B_SCHEMA)]
    )
    start = time.perf_counter()
    result = chain.discover()
    elapsed = (time.perf_counter() - start) * 1e3
    print(f"{'dead http -> compiled fallback':<31}{elapsed:>8.3f} ms "
          f"(degraded={result.degraded})")


def ablation_codegen():
    heading("Ablation A1 — generated vs interpreted conversion")
    print(f"{'fields':>7}{'generated us':>14}{'interpreted us':>16}{'gain':>7}")
    for fields in (4, 16, 64, 128):
        workload = SyntheticWorkload(fields, mix="mixed")
        context = IOContext(SPARC_32)
        XML2Wire(context).register_schema(workload.schema)
        fmt = context.lookup_format("Synthetic")
        payload = encode_record(fmt, workload.record())
        generated = make_generated_converter(fmt)
        interpreted = make_interpreted_converter(fmt)
        t_gen = best_of(lambda: generated(payload), MSG_ROUNDS) * 1e3
        t_int = best_of(lambda: interpreted(payload), MSG_ROUNDS) * 1e3
        print(f"{fields:>7}{t_gen:>14.2f}{t_int:>16.2f}{t_int / t_gen:>6.1f}x")


def pr5_report(check: bool) -> int:
    """Zero-copy hot-path numbers -> BENCH_PR5.json (and the console).

    ``check`` turns the run into a no-regression gate: exit status 1 if
    allocation churn is not down by half or batched sends are not 1.3x
    per-message sends (the PR's acceptance floors).
    """
    import json
    import os

    from benchmarks.test_zero_copy import (
        run_alloc_ab,
        run_pool_steady_state,
        run_throughput_ab,
    )

    heading("PR5 — allocation-free hot path")
    alloc = run_alloc_ab()
    throughput = run_throughput_ab()
    pool = run_pool_steady_state()
    print(f"{'allocation churn, copying path':<38}"
          f"{alloc['copy_churn_bytes_per_message']:>10.0f} B/msg")
    print(f"{'allocation churn, zero-copy path':<38}"
          f"{alloc['zero_copy_churn_bytes_per_message']:>10.0f} B/msg")
    print(f"{'churn reduction':<38}{alloc['churn_reduction']:>10.0%}")
    print(f"{'pipeline pool hit rate':<38}{alloc['pool_hit_rate']:>10.0%}")
    print(f"{'per-message sends':<38}"
          f"{throughput['per_message_mps']:>10.0f} msg/s")
    print(f"{'batched send_many':<38}{throughput['batched_mps']:>10.0f} msg/s")
    print(f"{'batched speedup':<38}{throughput['speedup']:>10.2f}x")
    print(f"{'pool steady-state hit rate':<38}{pool['hit_rate']:>10.0%}")
    results = {
        "allocation": alloc,
        "throughput": throughput,
        "pool_steady_state": pool,
    }
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_PR5.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {path}")
    if not check:
        return 0
    failures = []
    if alloc["churn_reduction"] < 0.5:
        failures.append(
            f"churn reduction {alloc['churn_reduction']:.0%} < 50%"
        )
    if throughput["speedup"] < 1.3:
        failures.append(f"send_many speedup {throughput['speedup']:.2f}x < 1.3x")
    if pool["hit_rate"] < 0.9:
        failures.append(f"pool hit rate {pool['hit_rate']:.0%} < 90%")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0


def pr7_report(check: bool) -> int:
    """Columnar bulk-streaming numbers -> BENCH_PR7.json (and console).

    ``check`` turns the run into a no-regression gate: exit status 1
    if the best batch (>= 64 records) end-to-end speedup over
    per-record NDR falls under the PR's 10x acceptance floor, or the
    codec-only speedup under 4x.
    """
    import json
    import os

    from benchmarks.test_columnar import (
        HAVE_NUMPY,
        run_codec_throughput_ab,
        run_e2e_throughput_ab,
    )

    heading("PR7 — columnar bulk streaming vs per-record NDR")
    e2e = run_e2e_throughput_ab()
    codec = run_codec_throughput_ab()
    print(f"{'format':<38}{e2e['format']:>24}")
    print(f"{'samples per record':<38}{e2e['samples_per_record']:>24}")
    print(f"{'numpy available':<38}{str(e2e['numpy']):>24}")
    print(f"{'per-record NDR end-to-end':<38}"
          f"{e2e['per_record_rps']:>16.0f} rec/s")
    for batch_size, entry in sorted(e2e["batches"].items()):
        print(f"{f'columnar batch={batch_size}':<38}"
              f"{entry['records_per_second']:>16.0f} rec/s  "
              f"({entry['speedup']:.1f}x)")
    print(f"{'best batch speedup':<38}{e2e['best_speedup']:>17.1f}x")
    print(f"{'codec-only per-record':<38}"
          f"{codec['per_record_rps']:>16.0f} rec/s")
    print(f"{'codec-only columnar':<38}"
          f"{codec['columnar_rps']:>16.0f} rec/s  ({codec['speedup']:.1f}x)")
    results = {"e2e": e2e, "codec": codec}
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_PR7.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {path}")
    if not check:
        return 0
    if not HAVE_NUMPY:
        print("numpy unavailable: vectorized floors not applicable, skipping")
        return 0
    failures = []
    best_64 = max(
        (entry["speedup"] for size, entry in e2e["batches"].items()
         if int(size) >= 64),
        default=0.0,
    )
    if best_64 < 10.0:
        failures.append(f"batch>=64 e2e speedup {best_64:.1f}x < 10x")
    if codec["speedup"] < 4.0:
        failures.append(f"codec-only speedup {codec['speedup']:.1f}x < 4x")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0


def pr8_report(check: bool) -> int:
    """Multi-core serving plane numbers -> BENCH_PR8.json (and console).

    ``check`` turns the run into a no-regression gate: exit status 1 if
    the 1→4 worker fan-out scaling falls under 1.8x (hosts with ≥4
    cores) or the shm-over-TCP latency win under 3x at 4 KiB (hosts
    with ≥2 cores).  On smaller hosts the floors do not apply — worker
    processes time-slicing one core cannot scale and a spinning ring
    cannot beat a blocking read — so the gate reports the numbers and
    passes; the JSON records the core count either way.
    """
    import json
    import os

    from benchmarks.test_mp_scaling import (
        SCALING_FLOOR,
        SHM_SPEEDUP_FLOOR,
        run_fanout_scaling,
        run_shm_vs_tcp_latency,
    )

    heading("PR8 — multi-core serving plane")
    latency = run_shm_vs_tcp_latency()
    fanout = run_fanout_scaling()
    print(f"{'host cores':<38}{latency['cores']:>24}")
    print(f"{'shm round trip (4 KiB)':<38}{latency['shm_rtt_us']:>21.1f} us")
    print(f"{'tcp round trip (4 KiB)':<38}{latency['tcp_rtt_us']:>21.1f} us")
    print(f"{'shm over tcp':<38}{latency['speedup']:>23.2f}x")
    for point in fanout["points"].values():
        label = f"pool fan-out, {point['workers']} workers"
        print(f"{label:<38}{point['requests_per_second']:>18.0f} req/s")
    print(f"{'fan-out scaling 1 -> 4':<38}{fanout['scaling']:>23.2f}x")
    results = {"latency": latency, "fanout": fanout}
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_PR8.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {path}")
    if not check:
        return 0
    failures = []
    if latency["gated"]:
        if latency["speedup"] < SHM_SPEEDUP_FLOOR:
            failures.append(
                f"shm latency win {latency['speedup']:.2f}x < "
                f"{SHM_SPEEDUP_FLOOR}x at 4 KiB"
            )
    else:
        print("single core: shm latency floor not applicable, skipping")
    if fanout["gated"]:
        if fanout["scaling"] < SCALING_FLOOR:
            failures.append(
                f"fan-out scaling {fanout['scaling']:.2f}x < {SCALING_FLOOR}x"
            )
    else:
        print(f"{fanout['cores']} core(s): scaling floor needs >= 4, skipping")
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0


def pr10_report(check: bool) -> int:
    """Instance-based lazy binding numbers -> BENCH_PR10.json (and console).

    ``check`` turns the run into a no-regression gate: exit status 1 if
    the fused decode+project speedup over the interpreted projection
    composition falls under 5x at batch >= 64, if the 10k-format churn
    grows the converter cache past its capacity, or if the steady-state
    hit rate falls under 99%.
    """
    import json
    import os

    from benchmarks.test_lazy_binding import (
        FUSED_SPEEDUP_FLOOR,
        HIT_RATE_FLOOR,
        run_cache_churn,
        run_fused_decode_ab,
    )

    heading("PR10 — instance-based lazy binding")
    fused = run_fused_decode_ab()
    churn = run_cache_churn()
    print(f"{'wire/native fields':<38}"
          f"{fused['wire_fields']:>20} / {fused['native_fields']}")
    for batch_size, entry in sorted(fused["batches"].items()):
        print(f"{f'fused decode, batch={batch_size}':<38}"
              f"{entry['fused_rps']:>16.0f} rec/s  "
              f"({entry['speedup']:.1f}x over interpreted)")
    print(f"{'best speedup (batch >= 64)':<38}{fused['best_speedup']:>23.1f}x")
    print(f"{'distinct formats churned':<38}{churn['formats']:>24}")
    print(f"{'cache capacity':<38}{churn['capacity']:>24}")
    print(f"{'cache size after churn':<38}{churn['size_after_churn']:>24}")
    print(f"{'evictions':<38}{churn['evictions']:>24}")
    print(f"{'churn decode rate':<38}{churn['churn_rps']:>16.0f} rec/s")
    print(f"{'steady-state decode rate':<38}{churn['steady_rps']:>16.0f} rec/s")
    print(f"{'steady-state hit rate':<38}{churn['steady_hit_rate']:>23.1%}")
    results = {"fused": fused, "churn": churn}
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "BENCH_PR10.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {path}")
    if not check:
        return 0
    failures = []
    if fused["best_speedup"] < FUSED_SPEEDUP_FLOOR:
        failures.append(
            f"fused speedup {fused['best_speedup']:.1f}x < "
            f"{FUSED_SPEEDUP_FLOOR}x at batch >= 64"
        )
    if churn["size_after_churn"] > churn["capacity"]:
        failures.append(
            f"cache size {churn['size_after_churn']} exceeds capacity "
            f"{churn['capacity']} after churn"
        )
    if churn["steady_hit_rate"] < HIT_RATE_FLOOR:
        failures.append(
            f"steady-state hit rate {churn['steady_hit_rate']:.1%} < "
            f"{HIT_RATE_FLOOR:.0%}"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}")
    return 1 if failures else 0


def main():
    print("repro benchmark report — paper: Widener/Schwan/Eisenhauer, "
          "ICDCS 2001 (GIT-CC-00-21)")
    if "--pr5" in sys.argv:
        raise SystemExit(pr5_report(check="--check" in sys.argv))
    if "--pr7" in sys.argv:
        raise SystemExit(pr7_report(check="--check" in sys.argv))
    if "--pr8" in sys.argv:
        raise SystemExit(pr8_report(check="--check" in sys.argv))
    if "--pr10" in sys.argv:
        raise SystemExit(pr10_report(check="--check" in sys.argv))
    print(f"mode: {'quick' if QUICK else 'full'}")
    table1()
    claims_performance()
    claim_sizes()
    claim_amortization()
    claim_scaling()
    claim_discovery()
    ablation_codegen()
    print()


if __name__ == "__main__":
    main()
