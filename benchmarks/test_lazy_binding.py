"""Experiment P10 — instance-based lazy binding: fused projections + LRU.

Two claims of PROTOCOL §16, measured:

- **Fused decode+project**: on evolved records (wire format != native
  format) the compiled fused converter must deliver at least **5x** the
  records/second of the interpreted decode-then-project composition
  once batches reach 64 records (one converter-cache probe amortized
  over the batch — the broker receive loop's actual shape).
- **Bounded converter cache**: pushing 10k distinct wire formats
  through a capacity-bounded cache must hold the live entry count at
  the cap, and steady-state traffic over a small working set must hit
  the cache at >= 99%.

The helpers are imported by ``benchmarks/report.py --pr10`` to emit
``BENCH_PR10.json``; keep their signatures stable.
"""

from __future__ import annotations

import time

from repro.arch import SPARC_32, X86_64
from repro.pbio import IOContext, IOField
from repro.pbio.context import HEADER, HEADER_SIZE
from repro.pbio.decode import ConverterCache
from repro.pbio.format import IOFormat

#: Batch sizes swept by the decode A/B; the acceptance gate reads the
#: best batch >= 64.
BATCH_SIZES = (16, 64, 256)

#: Records decoded per arm and batch size (divisible by every size).
TOTAL_RECORDS = 8192

#: The PR10 acceptance floor: fused decode of evolved records vs the
#: interpreted projection composition, best batch >= 64.
FUSED_SPEEDUP_FLOOR = 5.0

#: Steady-state converter-cache hit-rate floor.
HIT_RATE_FLOOR = 0.99

#: Distinct wire formats pushed through the bounded cache.
CHURN_FORMATS = 10_000

#: Cache capacity used by the churn run.
CHURN_CAPACITY = 1024


def _track_fields(arch, evolved: bool):
    """A realistic telemetry record; the evolved wire adds three fields."""
    fields = [
        IOField("seq", "integer", 4, 0),
        IOField("ts", "double", 8, 8),
        IOField("flight", "string", arch.pointer_size, 16),
        IOField("alt", "integer", 4, 16 + arch.pointer_size),
        IOField("lat", "double", 8, 24 + arch.pointer_size),
        IOField("lon", "double", 8, 32 + arch.pointer_size),
    ]
    base = 40 + arch.pointer_size
    if evolved:
        fields += [
            IOField("speed", "double", 8, base),
            IOField("heading", "double", 8, base + 8),
            IOField("squawk", "integer", 4, base + 16),
        ]
    return fields


RECORD = {
    "seq": 7, "ts": 1718.25, "flight": "DL104", "alt": 31000,
    "lat": 33.64, "lon": -84.43, "speed": 450.0, "heading": 270.0,
    "squawk": 1200,
}


def _evolved_pair():
    """(wire format, native format, one encoded payload)."""
    sender = IOContext(SPARC_32)
    wire = sender.register_format("track", _track_fields(SPARC_32, True))
    receiver = IOContext(X86_64)
    target = receiver.register_format("track", _track_fields(X86_64, False))
    payload = sender.encode(wire, RECORD)[HEADER_SIZE:]
    return wire, target, payload


def _decode_batches(cache, wire, target, mode, payload, batch_size) -> float:
    """Decode TOTAL_RECORDS in batches; returns records per second.

    Each batch pays one converter-cache probe and ``batch_size``
    conversions — the receive loop of a subscriber draining a burst of
    same-format events.
    """
    batches = TOTAL_RECORDS // batch_size
    started = time.perf_counter()
    for _ in range(batches):
        converter = cache.lookup(wire, target, mode)
        for _ in range(batch_size):
            converter(payload)
    elapsed = time.perf_counter() - started
    return (batches * batch_size) / elapsed


def run_fused_decode_ab(trials: int = 3) -> dict:
    """Fused vs interpreted evolved-record decode across batch sizes."""
    wire, target, payload = _evolved_pair()
    cache = ConverterCache()
    # Sanity: both paths agree before anything is timed.
    fused_values = cache.lookup(wire, target, "generated")(payload)
    interp_values = cache.lookup(wire, target, "interpreted")(payload)
    assert fused_values == interp_values
    batches = {}
    for batch_size in BATCH_SIZES:
        fused = max(
            _decode_batches(cache, wire, target, "generated", payload, batch_size)
            for _ in range(trials)
        )
        interpreted = max(
            _decode_batches(cache, wire, target, "interpreted", payload, batch_size)
            for _ in range(trials)
        )
        batches[batch_size] = {
            "fused_rps": fused,
            "interpreted_rps": interpreted,
            "speedup": fused / interpreted,
        }
    best = max(
        entry["speedup"]
        for size, entry in batches.items()
        if size >= 64
    )
    return {
        "wire_fields": len(wire.fields),
        "native_fields": len(target.fields),
        "total_records": TOTAL_RECORDS,
        "batches": batches,
        "best_speedup": best,
    }


def run_cache_churn(
    formats: int = CHURN_FORMATS, capacity: int = CHURN_CAPACITY
) -> dict:
    """10k-distinct-format churn, then steady-state over a hot set.

    Phase 1 decodes one record per distinct format (every lookup a
    miss past the cap, evicting as it goes); phase 2 replays traffic
    over a 64-format working set, where the cache must serve >= 99%
    of lookups.
    """
    receiver = IOContext(
        X86_64, converter_capacity=capacity, use_fused=None
    )
    distinct = []
    for index in range(formats):
        fmt = IOFormat(
            f"fmt{index}", [IOField("v", "integer", 4, 0)], X86_64, catalog={}
        )
        receiver._wire_formats[fmt.format_id] = fmt
        distinct.append(fmt)
    message = bytearray(HEADER.pack(1, 1, 0, 4, b"\x00" * 8) + b"\x2a\x00\x00\x00")

    def decode(fmt):
        message[8:16] = fmt.format_id
        return receiver.decode(bytes(message))

    started = time.perf_counter()
    for fmt in distinct:
        decode(fmt)
    churn_elapsed = time.perf_counter() - started
    after_churn = receiver.converter_cache_stats()

    hot = distinct[:64]
    rounds = 200
    steady_base = receiver.converter_cache_stats()
    started = time.perf_counter()
    for _ in range(rounds):
        for fmt in hot:
            decode(fmt)
    steady_elapsed = time.perf_counter() - started
    after_steady = receiver.converter_cache_stats()
    lookups = rounds * len(hot)
    hits = after_steady["hits"] - steady_base["hits"]
    return {
        "formats": formats,
        "capacity": capacity,
        "churn_rps": formats / churn_elapsed,
        "size_after_churn": after_churn["size"],
        "evictions": after_churn["evictions"],
        "steady_rps": lookups / steady_elapsed,
        "steady_hit_rate": hits / lookups,
        "builds": after_steady["builds"],
    }


class TestLazyBindingFloors:
    """The same floors report.py gates on, as a pytest entry point."""

    def test_fused_speedup_floor(self):
        result = run_fused_decode_ab()
        assert result["best_speedup"] >= FUSED_SPEEDUP_FLOOR

    def test_churn_holds_cap_and_steady_state_hits(self):
        result = run_cache_churn(formats=2000, capacity=256)
        assert result["size_after_churn"] <= 256
        assert result["steady_hit_rate"] >= HIT_RATE_FLOOR
