"""Multi-core serving plane — fan-out scaling and shm vs TCP latency (PR8).

Two experiments back the worker-pool subsystem (PROTOCOL §15):

- **fan-out scaling** — the same total HTTP request volume, driven by
  client *processes* (the GIL would cap client threads at one core),
  against pools of 1/2/4 workers sharing one port.  Acceptance: ≥1.8x
  throughput from 1 to 4 workers — gated only on hosts with ≥4 cores,
  since on fewer cores the workers time-slice one CPU and the kernel's
  accept sharding cannot manufacture parallelism.
- **shm vs TCP latency** — 4 KiB round trips against an echo child over
  a :class:`~repro.mp.shm.ShmChannel` ring pair versus loopback TCP.
  Acceptance: ≥3x faster — gated on ≥2 cores, because the ring's
  spin-then-park wait degrades to timer granularity when producer and
  consumer share one core, while blocking TCP reads context-switch
  directly.

CI smoke (about 30 seconds)::

    python benchmarks/report.py --pr8 --check
"""

import os
import time
from multiprocessing import get_context

import pytest

from repro.errors import ChannelClosedError, TransportError, TransportTimeoutError
from repro.metaserver.client import http_get
from repro.mp.pool import WorkerPool
from repro.mp.shm import ShmChannel
from repro.transport import connect, listen
from repro.workloads import ASDOFF_B_SCHEMA

_CTX = get_context("spawn")

PAYLOAD_BYTES = 4096
ROUND_TRIPS = 600
WORKER_COUNTS = (1, 2, 4)
CLIENT_PROCS = 4
REQUESTS_PER_CLIENT = 60

#: Acceptance floors (see ISSUE/ROADMAP); both are core-count gated.
SCALING_FLOOR = 1.8
SHM_SPEEDUP_FLOOR = 3.0

CORES = os.cpu_count() or 1


# -- spawn targets (top-level so the spawn start method can pickle them) -------

def _shm_echo_child(uri):
    channel = ShmChannel.attach(uri)
    try:
        while True:
            try:
                message = channel.recv(timeout=30.0)
            except (ChannelClosedError, TransportTimeoutError):
                break
            channel.send(message)
    finally:
        channel.close()


def _tcp_echo_child(host, port):
    channel = connect(host, port)
    try:
        while True:
            try:
                message = channel.recv(timeout=30.0)
            except (ChannelClosedError, TransportError):
                break
            channel.send(message)
    finally:
        channel.close()


def _fanout_client(url, requests, barrier, queue):
    barrier.wait(timeout=120)
    started = time.perf_counter()
    for _ in range(requests):
        http_get(url, timeout=30.0)
    queue.put(time.perf_counter() - started)


# -- experiments ---------------------------------------------------------------

def _time_round_trips(channel, round_trips):
    payload = b"\xa5" * PAYLOAD_BYTES
    for _ in range(50):  # warmup: page in the rings / prime the socket
        channel.send(payload)
        channel.recv(timeout=30.0)
    started = time.perf_counter()
    for _ in range(round_trips):
        channel.send(payload)
        channel.recv(timeout=30.0)
    return (time.perf_counter() - started) / round_trips


def run_shm_vs_tcp_latency(round_trips=ROUND_TRIPS):
    """Round-trip latency A/B at 4 KiB: shm ring pair vs loopback TCP."""
    channel, endpoint = ShmChannel.create(1 << 20)
    child = _CTX.Process(
        target=_shm_echo_child, args=(endpoint.uri(),), daemon=True
    )
    child.start()
    shm_rtt = _time_round_trips(channel, round_trips)
    channel.close()
    child.join(timeout=10)

    listener = listen()
    host, port = listener.address
    child = _CTX.Process(target=_tcp_echo_child, args=(host, port), daemon=True)
    child.start()
    server = listener.accept(timeout=10)
    tcp_rtt = _time_round_trips(server, round_trips)
    server.close()
    listener.close()
    child.join(timeout=10)

    return {
        "payload_bytes": PAYLOAD_BYTES,
        "round_trips": round_trips,
        "cores": CORES,
        "shm_rtt_us": shm_rtt * 1e6,
        "tcp_rtt_us": tcp_rtt * 1e6,
        "speedup": tcp_rtt / shm_rtt,
        "gated": CORES >= 2,
    }


def _pool_throughput(workers, clients, per_client):
    with WorkerPool(workers=workers) as pool:
        pool.publish_schema("/bench.xsd", ASDOFF_B_SCHEMA)
        url = pool.url_for("/bench.xsd")
        barrier = _CTX.Barrier(clients + 1)
        queue = _CTX.Queue()
        procs = [
            _CTX.Process(
                target=_fanout_client,
                args=(url, per_client, barrier, queue),
                daemon=True,
            )
            for _ in range(clients)
        ]
        for proc in procs:
            proc.start()
        barrier.wait(timeout=120)  # all clients spawned: fire together
        elapsed = [queue.get(timeout=300) for _ in procs]
        for proc in procs:
            proc.join(timeout=10)
    # Aggregate rate over the straggler's window: every request in it.
    return clients * per_client / max(elapsed)


def run_fanout_scaling(
    worker_counts=WORKER_COUNTS,
    clients=CLIENT_PROCS,
    per_client=REQUESTS_PER_CLIENT,
):
    """Pool throughput at each worker count, plus the 1→max scaling ratio."""
    points = {}
    for count in worker_counts:
        rps = _pool_throughput(count, clients, per_client)
        points[str(count)] = {"workers": count, "requests_per_second": rps}
    baseline = points[str(worker_counts[0])]["requests_per_second"]
    top = points[str(worker_counts[-1])]["requests_per_second"]
    return {
        "cores": CORES,
        "clients": clients,
        "requests_per_client": per_client,
        "points": points,
        "scaling": top / baseline,
        "gated": CORES >= 4,
    }


# -- pytest entry points -------------------------------------------------------

class TestShmVsTcpLatency:
    def test_shm_round_trips_measure(self):
        result = run_shm_vs_tcp_latency(round_trips=200)
        print(
            f"\nshm rtt {result['shm_rtt_us']:.1f}us  "
            f"tcp rtt {result['tcp_rtt_us']:.1f}us  "
            f"speedup {result['speedup']:.2f}x ({result['cores']} cores)"
        )
        assert result["shm_rtt_us"] > 0
        assert result["tcp_rtt_us"] > 0
        if result["gated"]:
            assert result["speedup"] >= SHM_SPEEDUP_FLOOR


class TestFanoutScaling:
    def test_pool_serves_under_client_storm(self):
        rps = _pool_throughput(workers=2, clients=2, per_client=25)
        print(f"\n2-worker pool: {rps:.0f} req/s")
        assert rps > 0

    @pytest.mark.skipif(CORES < 4, reason="scaling floor needs >= 4 cores")
    def test_scaling_floor_at_four_workers(self):
        result = run_fanout_scaling()
        for point in result["points"].values():
            print(
                f"\n{point['workers']} workers: "
                f"{point['requests_per_second']:.0f} req/s"
            )
        assert result["scaling"] >= SCALING_FLOOR
