"""Observability overhead smoke: instrumentation costs < 5 % on hot paths.

The obs design doc promises the metrics layer is cheap enough to leave
on: per-thread sharded counters, 1-in-16 duration sampling, and a
single ``Registry.enabled`` check as the kill switch.  This smoke pins
that promise on the paper's representative structure (CD, the 180 B
Table 1 row) over a full encode + decode round trip.

Methodology — built for a noisy shared host:

- **CPU time, not wall time.**  ``time.thread_time`` excludes time the
  scheduler gives to other processes, which on a contended box swamps
  the ~1 µs/op effect under test (observed wall-clock swings: ±20 %).
- **Adjacent A/B slice pairs, alternating order.**  Each pair samples
  one instant of machine state; alternating which state runs first
  cancels monotone drift (frequency scaling, thermal throttling).
- **Median of paired ratios per round, minimum across rounds.**  On a
  quiet machine every round reads the true overhead (~1-3 %); under
  contention the noise is large and roughly symmetric, so the minimum
  round is the least-contaminated reading.  The assert is a smoke
  against gross regressions (an un-gated or per-call-timed hot path
  reads 30-50 % here), not a precision measurement.
"""

import statistics
import time

from repro.obs import Registry, set_registry
from repro.obs.metrics import get_registry

from tests.golden import vectors

ROUNDS = 5
PAIRS_PER_ROUND = 12
OPS_PER_SLICE = 300
MAX_OVERHEAD = 0.05


def round_trip_cpu_seconds(context, fmt, record, ops):
    """One timed slice: CPU seconds for ``ops`` encode+decode round trips."""
    encode = context.encode
    decode = context.decode
    started = time.thread_time()
    for _ in range(ops):
        decode(encode(fmt, record))
    return time.thread_time() - started


def test_instrumented_round_trip_overhead_under_5_percent():
    context, fmt, record = vectors.build("asdoff_cd")
    previous = get_registry()
    registry = set_registry(Registry())
    try:
        # Warm both paths: converter build, codegen, metric families.
        registry.enable()
        round_trip_cpu_seconds(context, fmt, record, 200)
        registry.disable()
        round_trip_cpu_seconds(context, fmt, record, 200)

        round_medians = []
        for _ in range(ROUNDS):
            ratios = []
            for pair in range(PAIRS_PER_ROUND):
                order = (True, False) if pair % 2 == 0 else (False, True)
                elapsed = {}
                for state in order:
                    registry.enabled = state
                    elapsed[state] = round_trip_cpu_seconds(
                        context, fmt, record, OPS_PER_SLICE
                    )
                ratios.append(elapsed[True] / elapsed[False])
            round_medians.append(statistics.median(ratios))
    finally:
        set_registry(previous)

    overhead = min(round_medians) - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"instrumented round trip is {overhead:.1%} slower than disabled "
        f"(round medians: {[f'{m - 1:+.1%}' for m in round_medians]}); "
        f"budget is {MAX_OVERHEAD:.0%}"
    )


def test_disabled_registry_records_nothing():
    context, fmt, record = vectors.build("asdoff_a")
    previous = get_registry()
    registry = set_registry(Registry(enabled=False))
    try:
        context.decode(context.encode(fmt, record))
        assert registry.snapshot().get("pbio_encode_total", {}) == {}
    finally:
        set_registry(previous)
