"""Experiment C3 — encoded-size comparison (the 6-8x expansion claim).

Paper (§6, citing Bustamante et al.): "the ASCII-encoded record is
larger, often substantially larger, than the binary original (an
expansion factor of 6-8 is not unusual)".

Each benchmark times one encode and records the resulting sizes in
``extra_info``, so the benchmark JSON doubles as the size table;
``report.py`` prints it.  The assertion pins the claim's range for the
paper-like mixed record shape.
"""

import pytest

from repro import IOContext, SPARC_32, XDRCodec, XMLTextCodec, XML2Wire
from repro.pbio.encode import encode_record
from repro.workloads import (
    ASDOFF_B_SCHEMA,
    AirlineWorkload,
    MiningWorkload,
    WeatherWorkload,
)

SHAPES = [
    ("asdoff_b", ASDOFF_B_SCHEMA, "ASDOffEvent",
     lambda: AirlineWorkload(seed=3).record_b()),
    ("weather", WeatherWorkload.schema, "SurfaceObservation",
     lambda: WeatherWorkload(seed=3).record()),
    ("mining", MiningWorkload.schema, "RuleDiscovery",
     lambda: MiningWorkload(seed=3).record(sample_count=8)),
]


def sizes_for(schema, format_name, record):
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(schema)
    fmt = context.lookup_format(format_name)
    ndr = len(encode_record(fmt, record))  # payload, no framing
    xdr = len(XDRCodec(fmt).encode(record))
    xml = len(XMLTextCodec(fmt).encode(record))
    return fmt, ndr, xdr, xml


@pytest.mark.parametrize("label,schema,format_name,make_record", SHAPES,
                         ids=[s[0] for s in SHAPES])
def test_encoded_sizes(benchmark, label, schema, format_name, make_record):
    record = make_record()
    fmt, ndr, xdr, xml = sizes_for(schema, format_name, record)
    benchmark.extra_info.update(
        {"ndr_bytes": ndr, "xdr_bytes": xdr, "xml_bytes": xml,
         "xml_over_ndr": round(xml / ndr, 2)}
    )
    # XML is always the largest; XDR never smaller than logical data.
    assert xml > xdr >= ndr * 0.5
    benchmark(lambda: XMLTextCodec(fmt).encode(record))


def test_expansion_factor_in_paper_range(benchmark):
    """Mixed records with realistic field names land in (or above) the
    paper's 6-8x window; we accept 3x+ as reproducing the shape since
    the exact factor depends on name lengths and value magnitudes."""
    record = AirlineWorkload(seed=9).record_b()
    fmt, ndr, _, xml = sizes_for(ASDOFF_B_SCHEMA, "ASDOffEvent", record)
    factor = xml / ndr
    assert factor > 3.0
    benchmark.extra_info["expansion_factor"] = round(factor, 2)
    benchmark(lambda: XMLTextCodec(fmt).encode(record))
