"""Experiment P7 — columnar bulk streaming vs per-record NDR.

The bulk-stream claim: carrying N same-format records as one columnar
frame (per-field column blocks, vectorized conversion, one writev per
batch) must deliver at least **10x** the end-to-end records/second of N
individual NDR messages once batches reach 64 records.

The workload is the paper's bulk-scientific case: a telemetry frame of
scalars plus a dynamic array of double samples — the shape atmospheric
and instrument streams actually have.  Each arm runs with its natural
input and output representation:

- **per-record NDR**: one ``encode``/``send`` syscall and one
  ``recv``/``decode``-to-dict per record — the pre-batch hot path.
- **columnar**: the bulk-sender idiom (sample arrays held as
  ndarrays), ``encode_batch_iov`` + scatter-gather ``send_batch``, and
  a receiver that consumes every column through the zero-copy
  :class:`~repro.pbio.ColumnBatchView` — the "touch only the bytes you
  need" consumption model the frame exists for.

Two A/B measurements over a real TCP socket pair: end-to-end
throughput (the acceptance gate) and codec-only throughput (no socket,
isolating vectorized conversion from syscall amortization).

The helpers are imported by ``benchmarks/report.py --pr7`` to emit
``BENCH_PR7.json``; keep their signatures stable.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import IOContext, XML2Wire
from repro.pbio.columnar import _numpy_or_none
from repro.transport import connect, listen

#: Batch sizes swept by the throughput A/B; the acceptance gate reads
#: the best batch >= 64.
BATCH_SIZES = (64, 256, 512)

#: Records pushed per arm (divisible by every batch size).
TOTAL_RECORDS = 4096

#: Doubles per record's dynamic ``samples`` array.
SAMPLES_PER_RECORD = 128

SENSOR_SCHEMA = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="SensorFrame">
    <xsd:element name="seq" type="xsd:unsigned-int" />
    <xsd:element name="timestamp" type="xsd:double" />
    <xsd:element name="sensor" type="xsd:unsigned-short" />
    <xsd:element name="flags" type="xsd:unsigned-short" />
    <xsd:element name="value" type="xsd:double" />
    <xsd:element name="samples" type="xsd:double" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>"""

SCALAR_FIELDS = ("seq", "timestamp", "sensor", "flags", "value")

HAVE_NUMPY = _numpy_or_none() is not None

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the vectorized bulk path requires numpy"
)


def tcp_pair():
    """A connected (client, server, listener) triple on localhost."""
    listener = listen()
    host, port = listener.address
    accepted = {}
    thread = threading.Thread(
        target=lambda: accepted.update(channel=listener.accept(timeout=5.0))
    )
    thread.start()
    client = connect(host, port)
    thread.join(timeout=5.0)
    return client, accepted["channel"], listener


def build_endpoints():
    """(sender context, fmt, row records, bulk records, receiver context).

    ``row records`` carry plain-list sample arrays (the per-record
    arm's natural input); ``bulk records`` carry the same values as
    ndarrays when numpy is available (the documented bulk-sender
    idiom the columnar encoder vectorizes over).
    """
    sender = IOContext()
    XML2Wire(sender).register_schema(SENSOR_SCHEMA)
    fmt = sender.lookup_format("SensorFrame")
    receiver = IOContext()
    receiver.learn_format(fmt.to_wire_metadata())
    rows = []
    for index in range(TOTAL_RECORDS):
        rows.append({
            "seq": index,
            "timestamp": 954547200.0 + index * 0.001,
            "sensor": index % 64,
            "flags": index % 4,
            "value": (index % 1000) * 0.25,
            "samples": [index + 0.25 * j for j in range(SAMPLES_PER_RECORD)],
            "samples_count": SAMPLES_PER_RECORD,
        })
    numpy = _numpy_or_none()
    if numpy is None:
        bulk = rows
    else:
        bulk = [
            dict(row, samples=numpy.asarray(row["samples"], dtype="<f8"))
            for row in rows
        ]
    return sender, fmt, rows, bulk, receiver


def consume_view(view) -> int:
    """Touch every column of a batch the columnar way.

    Reads all five scalar columns and the flattened samples heap as
    zero-copy ndarrays — the whole payload is consumed, field by
    field, without materializing row dicts.
    """
    for name in SCALAR_FIELDS:
        view.column(name)
    view.dynamic_column("samples")
    return view.count


def _timed_pipeline(send_all, recv_all, trials: int) -> float:
    """Best-of-``trials`` records/second for one pipeline shape."""
    best = 0.0
    for _ in range(trials):
        client, server, listener = tcp_pair()
        try:
            done = threading.Event()
            thread = threading.Thread(target=lambda: (recv_all(server), done.set()))
            thread.start()
            started = time.perf_counter()
            send_all(client)
            done.wait(timeout=60.0)
            elapsed = time.perf_counter() - started
            thread.join(timeout=5.0)
        finally:
            client.close()
            server.close()
            listener.close()
        best = max(best, TOTAL_RECORDS / elapsed)
    return best


def run_e2e_throughput_ab(trials: int = 3) -> dict:
    """End-to-end records/second: per-record NDR vs columnar batches.

    Both arms cover the full pipeline — encode, send, receive, and
    consume every field of every record; the batch arm is swept over
    :data:`BATCH_SIZES`.
    """
    sender, fmt, rows, bulk, receiver = build_endpoints()
    meta = fmt.to_wire_metadata()

    def per_record_send(client):
        encode = sender.encode
        for record in rows:
            client.send(encode(fmt, record))

    def per_record_recv(server):
        decode = receiver.decode
        for _ in rows:
            decode(server.recv(timeout=10.0))

    per_record_rps = _timed_pipeline(per_record_send, per_record_recv, trials)

    use_view = HAVE_NUMPY
    batches = {}
    for batch_size in BATCH_SIZES:
        chunks = [
            bulk[start:start + batch_size]
            for start in range(0, TOTAL_RECORDS, batch_size)
        ]

        def batch_send(client, chunks=chunks):
            encode_iov = sender.encode_batch_iov
            for chunk in chunks:
                client.send_batch(encode_iov(fmt, chunk))

        def batch_recv(server, count=len(chunks)):
            if use_view:
                # Zero-copy all the way: the frame stays in the pooled
                # receive buffer and every column is consumed in place
                # before the next recv reuses it.
                decode_view = receiver.decode_batch_view
                for _ in range(count):
                    consume_view(decode_view(server.recv_view(timeout=10.0)))
            else:
                decode_batch = receiver.decode_batch
                for _ in range(count):
                    list(decode_batch(server.recv(timeout=10.0)))

        batch_rps = _timed_pipeline(batch_send, batch_recv, trials)
        batches[batch_size] = {
            "records_per_second": batch_rps,
            "speedup": batch_rps / per_record_rps,
        }

    best_speedup = max(entry["speedup"] for entry in batches.values())
    return {
        "records": TOTAL_RECORDS,
        "format": "SensorFrame (bulk telemetry)",
        "samples_per_record": SAMPLES_PER_RECORD,
        "metadata_bytes": len(meta),
        "numpy": HAVE_NUMPY,
        "per_record_rps": per_record_rps,
        "batches": batches,
        "best_speedup": best_speedup,
    }


def run_codec_throughput_ab(batch_size: int = 256, trials: int = 5) -> dict:
    """Codec-only records/second (no socket): encode + consume both ways."""
    sender, fmt, rows, bulk, receiver = build_endpoints()
    subset, bulk_subset = rows[:1024], bulk[:1024]
    chunks = [
        bulk_subset[start:start + batch_size]
        for start in range(0, len(bulk_subset), batch_size)
    ]
    use_view = HAVE_NUMPY

    def per_record():
        for record in subset:
            receiver.decode(sender.encode(fmt, record))

    def columnar():
        for chunk in chunks:
            message = sender.encode_batch(fmt, chunk)
            if use_view:
                consume_view(receiver.decode_batch_view(message))
            else:
                list(receiver.decode_batch(message))

    def best_rps(step):
        best = 0.0
        for _ in range(trials):
            started = time.perf_counter()
            step()
            best = max(best, len(subset) / (time.perf_counter() - started))
        return best

    per_record_rps = best_rps(per_record)
    columnar_rps = best_rps(columnar)
    return {
        "records": len(subset),
        "batch_size": batch_size,
        "numpy": HAVE_NUMPY,
        "per_record_rps": per_record_rps,
        "columnar_rps": columnar_rps,
        "speedup": columnar_rps / per_record_rps,
    }


# -- the acceptance tests ----------------------------------------------------


@needs_numpy
def test_batch_of_64_is_10x_per_record():
    result = run_e2e_throughput_ab()
    assert result["best_speedup"] >= 10.0, result


@needs_numpy
def test_codec_alone_beats_per_record():
    result = run_codec_throughput_ab()
    assert result["speedup"] >= 4.0, result


def test_batch_frames_decode_to_the_same_records():
    sender, fmt, rows, bulk, receiver = build_endpoints()
    subset, bulk_subset = rows[:64], bulk[:64]
    batch = receiver.decode_batch(sender.encode_batch(fmt, bulk_subset))
    singles = [receiver.decode(sender.encode(fmt, r)).values for r in subset]
    assert list(batch) == singles
