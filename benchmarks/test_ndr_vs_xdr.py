"""Experiment C1 — NDR versus XDR (and A2, reader-makes-right).

Paper claim (§1): "when transmitting structured binary data, we show
substantial (often exceeding 50%) performance gains compared to
commercial platforms that use XDR-based data representations."

The cost structure being measured:

- XDR converts *twice* per message (sender: native → canonical;
  receiver: canonical → native) and widens small fields, regardless of
  endpoint homogeneity;
- NDR converts at most *once* (receiver side, only when architectures
  differ), with a routine generated for the exact format pair;
- on homogeneous pairs NDR's conversion degenerates to plain unpacking
  (the A2 "reader-makes-right beats canonical" ablation).

Benchmarks cover the marshal+unmarshal round trip for the paper's
Structure B and for bulk numeric payloads of 1 KiB - 64 KiB.
"""

import pytest

from repro import IOContext, SPARC_32, X86_64, XDRCodec, XML2Wire
from repro.arch import NATIVE
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload, SyntheticWorkload

PAYLOADS = [1024, 8192, 65536]


def setup_ndr(sender_arch, receiver_arch, schema, format_name):
    sender = IOContext(sender_arch)
    XML2Wire(sender).register_schema(schema)
    fmt = sender.lookup_format(format_name)
    receiver = IOContext(receiver_arch)
    receiver.learn_format(fmt.to_wire_metadata())
    return sender, fmt, receiver


def setup_xdr(schema, format_name):
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(schema)
    return XDRCodec(context.lookup_format(format_name))


class TestStructureB:
    """The paper's own record shape: strings + arrays + scalars."""

    def test_ndr_heterogeneous_roundtrip(self, benchmark, airline):
        sender, fmt, receiver = setup_ndr(
            SPARC_32, X86_64, ASDOFF_B_SCHEMA, "ASDOffEvent"
        )
        record = airline.record_b()
        receiver.decode(sender.encode(fmt, record))  # warm converter cache

        def roundtrip():
            return receiver.decode(sender.encode(fmt, record))

        result = benchmark(roundtrip)
        assert result.values == record

    def test_ndr_homogeneous_roundtrip(self, benchmark, airline):
        """A2: reader-makes-right on matched endpoints — no byte swap."""
        sender, fmt, receiver = setup_ndr(
            NATIVE, NATIVE, ASDOFF_B_SCHEMA, "ASDOffEvent"
        )
        record = airline.record_b()
        receiver.decode(sender.encode(fmt, record))

        def roundtrip():
            return receiver.decode(sender.encode(fmt, record))

        result = benchmark(roundtrip)
        assert result.values == record

    def test_xdr_roundtrip(self, benchmark, airline):
        codec = setup_xdr(ASDOFF_B_SCHEMA, "ASDOffEvent")
        record = airline.record_b()

        def roundtrip():
            return codec.decode(codec.encode(record))

        result = benchmark(roundtrip)
        assert result == record

    def test_xdr_generated_roundtrip(self, benchmark, airline):
        """XDR with rpcgen-style generated stubs — the fairest XDR:
        both systems compiled, the gap is pure format cost."""
        from repro.wire.xdrgen import make_generated_xdr

        context = IOContext(SPARC_32)
        XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
        encode, decode = make_generated_xdr(context.lookup_format("ASDOffEvent"))
        record = airline.record_b()

        def roundtrip():
            return decode(encode(record))

        result = benchmark(roundtrip)
        assert result == record

    def test_cdr_roundtrip(self, benchmark, airline):
        """A2's comparator class: IIOP-style reader-makes-right."""
        from repro.wire import CDRCodec

        context = IOContext(SPARC_32)
        XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
        codec = CDRCodec(context.lookup_format("ASDOffEvent"))
        record = airline.record_b()

        def roundtrip():
            return codec.decode(codec.encode(record))

        result = benchmark(roundtrip)
        assert result == record


@pytest.mark.parametrize("payload", PAYLOADS, ids=lambda p: f"{p // 1024}KiB")
class TestBulkNumeric:
    """Scientific-data shape: one large double array."""

    def _workload(self, payload):
        workload = SyntheticWorkload(4, mix="numeric", array_field=True)
        return workload, workload.record_of_payload(payload)

    def test_ndr_heterogeneous(self, benchmark, payload):
        workload, record = self._workload(payload)
        sender, fmt, receiver = setup_ndr(
            SPARC_32, X86_64, workload.schema, "Synthetic"
        )
        receiver.decode(sender.encode(fmt, record))

        def roundtrip():
            return receiver.decode(sender.encode(fmt, record))

        benchmark(roundtrip)

    def test_xdr(self, benchmark, payload):
        workload, record = self._workload(payload)
        codec = setup_xdr(workload.schema, "Synthetic")

        def roundtrip():
            return codec.decode(codec.encode(record))

        benchmark(roundtrip)


def test_ndr_beats_xdr_by_half(benchmark, airline):
    """The headline >50% claim, against descriptor-driven XDR.

    The paper's comparators were "commercial platforms that use
    XDR-based data representations" — MPI datatype engines and
    TIBCO-style middleware that marshal by walking type descriptors at
    run time.  :class:`XDRCodec` models exactly that; NDR with its
    generated routines must beat it by >=1.5x.  (The fully-compiled
    rpcgen comparison is ablation A4 below.)"""
    import time

    record = airline.record_b()
    sender, fmt, receiver = setup_ndr(SPARC_32, X86_64, ASDOFF_B_SCHEMA, "ASDOffEvent")
    codec = setup_xdr(ASDOFF_B_SCHEMA, "ASDOffEvent")
    receiver.decode(sender.encode(fmt, record))

    rounds = 2000
    start = time.perf_counter()
    for _ in range(rounds):
        receiver.decode(sender.encode(fmt, record))
    ndr_time = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        codec.decode(codec.encode(record))
    xdr_time = time.perf_counter() - start

    assert xdr_time > 1.5 * ndr_time, (
        f"NDR {ndr_time:.3f}s vs descriptor XDR {xdr_time:.3f}s — "
        f"expected >=1.5x gap"
    )
    benchmark.extra_info["xdr_over_ndr"] = round(xdr_time / ndr_time, 2)
    benchmark(lambda: receiver.decode(sender.encode(fmt, record)))


def test_a4_compiled_stub_parity(benchmark, airline):
    """Ablation A4: when BOTH systems get generated routines, the gap in
    this Python substrate collapses to rough parity for small records.

    This is a substrate effect worth pinning down: in Python the cost of
    converting Python objects to bytes dominates and is paid by every
    wire format; NDR's C-era advantage (memcpy beats per-field
    conversion) has no Python analogue.  What our substrate *does*
    reproduce is the mechanism the paper credits: dynamic code
    generation beats descriptor interpretation several-fold (A1, and
    the generated-vs-interpreted XDR ratio asserted here)."""
    import time

    from repro.pbio.decode import ConverterCache
    from repro.pbio.encode import encode_record
    from repro.wire.xdrgen import make_generated_xdr

    record = airline.record_b()
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
    fmt = context.lookup_format("ASDOffEvent")
    convert = ConverterCache().lookup(fmt)
    xdr = setup_xdr(ASDOFF_B_SCHEMA, "ASDOffEvent")
    gen_encode, gen_decode = make_generated_xdr(fmt)

    def timed(func, rounds=2000):
        start = time.perf_counter()
        for _ in range(rounds):
            func()
        return time.perf_counter() - start

    ndr_codec_time = timed(lambda: convert(encode_record(fmt, record)))
    xdr_gen_time = timed(lambda: gen_decode(gen_encode(record)))
    xdr_int_time = timed(lambda: xdr.decode(xdr.encode(record)))

    # Generated stubs crush the descriptor walker (the DCG mechanism)...
    assert xdr_int_time > 3.0 * xdr_gen_time
    # ...and land in the same ballpark as NDR (parity within 2.5x either
    # way — the assertion is about the *collapse* of the interpreted gap).
    ratio = xdr_gen_time / ndr_codec_time
    assert 0.4 < ratio < 2.5, f"unexpected compiled-stub ratio {ratio:.2f}"
    benchmark.extra_info["xdr_gen_over_ndr_codec"] = round(ratio, 2)
    benchmark.extra_info["xdr_interp_over_xdr_gen"] = round(
        xdr_int_time / xdr_gen_time, 2
    )
    benchmark(lambda: convert(encode_record(fmt, record)))
