"""Experiment C6 — discovery source costs and the fallback path.

Paper (§3.3): "this consultation carries the cost of a network
round-trip, [but] the infrequency with which message formats change
works in favor of a system using remote discovery"; plus the
fault-tolerance argument for compiled-in fallback.

Benchmarks time full discovery+registration from each source:

- a live HTTP metadata server on loopback (remote discovery),
- the same with a warm client cache (repeat discovery),
- a local schema file,
- compiled-in metadata (no parse of XML text needed beyond startup).
"""

import pytest

from repro import (
    CompiledSource,
    DiscoveryChain,
    FileSource,
    IOContext,
    MetadataClient,
    MetadataServer,
    SPARC_32,
    URLSource,
    XML2Wire,
)
from repro.workloads import ASDOFF_B_SCHEMA


@pytest.fixture(scope="module")
def live_server():
    with MetadataServer() as server:
        server.publish_schema("/schemas/asdoff.xsd", ASDOFF_B_SCHEMA)
        yield server


def register_result(result):
    tool = XML2Wire(IOContext(SPARC_32))
    return tool.register_schema(result.schema)


def test_discovery_http_cold(benchmark, live_server):
    url = live_server.url_for("/schemas/asdoff.xsd")

    def discover():
        chain = DiscoveryChain([URLSource(url, MetadataClient(ttl=0))])
        return register_result(chain.discover())

    formats = benchmark(discover)
    assert formats[0].record_length == 52


def test_discovery_http_cached(benchmark, live_server):
    url = live_server.url_for("/schemas/asdoff.xsd")
    client = MetadataClient(ttl=3600)
    client.get_schema(url)  # warm the cache

    def discover():
        chain = DiscoveryChain([URLSource(url, client)])
        return register_result(chain.discover())

    formats = benchmark(discover)
    assert formats[0].record_length == 52


def test_discovery_local_file(benchmark, tmp_path):
    path = tmp_path / "asdoff.xsd"
    path.write_text(ASDOFF_B_SCHEMA, encoding="utf-8")

    def discover():
        chain = DiscoveryChain([FileSource(path)])
        return register_result(chain.discover())

    formats = benchmark(discover)
    assert formats[0].record_length == 52


def test_discovery_compiled_in(benchmark):
    compiled = CompiledSource(ASDOFF_B_SCHEMA)  # parsed once at "compile time"

    def discover():
        return register_result(DiscoveryChain([compiled]).discover())

    formats = benchmark(discover)
    assert formats[0].record_length == 52


def test_discovery_fallback_after_server_death(benchmark):
    """The degraded path: unreachable server -> compiled-in metadata.
    Timed with a short timeout; the point is that it *works*, and that
    the cost is one failed connect plus the compiled path."""
    with MetadataServer() as server:
        dead_url = server.url_for("/schemas/asdoff.xsd")
    compiled = CompiledSource(ASDOFF_B_SCHEMA)

    def discover():
        chain = DiscoveryChain(
            [URLSource(dead_url, MetadataClient(timeout=0.1)), compiled]
        )
        result = chain.discover()
        assert result.degraded
        return register_result(result)

    formats = benchmark(discover)
    assert formats[0].record_length == 52
