"""Experiment P5 — the allocation-free hot path, measured.

The paper's receive-side claim is that NDR lets a receiver "move data
directly out of memory" and use payloads in place.  This module proves
the repo's zero-copy plumbing delivers that, with two A/B measurements
over a real TCP socket pair:

- **allocation churn** (tracemalloc): bytes allocated per message on the
  steady-state send→recv→view pipeline, copying path
  (``encode`` + ``recv`` + bytes payload) vs zero-copy path
  (``encode_into`` a pooled buffer + ``recv_view`` + ``RecordView`` over
  the ``memoryview``).  tracemalloc cannot count allocation *events*, so
  the metric is allocated-byte churn — the peak-minus-start delta per
  message, median over many messages.  Acceptance: ≥50 % reduction.
- **batched throughput**: ``send_many`` (N frames, one scatter-gather
  syscall) vs N per-message ``send`` calls, same drained receiver.
  Acceptance: ≥1.3× messages/second.

The helpers are imported by ``benchmarks/report.py --pr5`` to emit
``BENCH_PR5.json``; keep their signatures stable.
"""

from __future__ import annotations

import statistics
import threading
import time
import tracemalloc

from repro import IOContext, XML2Wire
from repro.transport import connect, listen
from repro.wire.bufpool import BufferPool, get_pool, set_pool
from repro.workloads import SyntheticWorkload

#: Steady-state pipeline shape: wide-ish record, homogeneous endpoints.
FIELD_COUNT = 32

#: Payload size for the churn A/B.  The paper's bulk case is scientific
#: records carrying data arrays; at this size the copies the old path
#: paid (encode concat + owned-bytes recv) dominate fixed object
#: overhead, which is what the zero-copy plumbing eliminates.
PAYLOAD_BYTES = 4096


def tcp_pair():
    """A connected (client, server, listener) triple on localhost."""
    listener = listen()
    host, port = listener.address
    accepted = {}
    thread = threading.Thread(
        target=lambda: accepted.update(channel=listener.accept(timeout=5.0))
    )
    thread.start()
    client = connect(host, port)
    thread.join(timeout=5.0)
    return client, accepted["channel"], listener


def build_endpoints(payload_bytes: int = 0):
    """(sender context, fmt, record, receiver context) for the pipeline.

    With ``payload_bytes`` > 0 the record carries a dynamic array that
    pads the payload to roughly that size (the bulk scientific case).
    """
    workload = SyntheticWorkload(
        FIELD_COUNT, mix="mixed", array_field=payload_bytes > 0
    )
    sender = IOContext()
    XML2Wire(sender).register_schema(workload.schema)
    fmt = sender.lookup_format("Synthetic")
    receiver = IOContext()
    receiver.learn_format(fmt.to_wire_metadata())
    record = (
        workload.record_of_payload(payload_bytes)
        if payload_bytes
        else workload.record()
    )
    if payload_bytes:
        try:  # numpy fast path: one vectorized conversion per message
            import numpy

            record["data"] = numpy.asarray(record["data"])
        except ImportError:  # pragma: no cover - numpy is an optional accel
            pass
    return sender, fmt, record, receiver


def median_churn(step, *, iterations: int = 60, warmup: int = 20) -> float:
    """Median allocated-bytes churn per ``step()`` call.

    Churn = tracemalloc peak minus the pre-call level: every byte
    allocated during the call counts, even if freed before it returns.
    """
    for _ in range(warmup):
        step()
    tracemalloc.start()
    samples = []
    try:
        for _ in range(iterations):
            tracemalloc.reset_peak()
            before, _ = tracemalloc.get_traced_memory()
            step()
            _, peak = tracemalloc.get_traced_memory()
            samples.append(max(peak - before, 0))
    finally:
        tracemalloc.stop()
    return statistics.median(samples)


def run_alloc_ab(iterations: int = 60) -> dict:
    """A/B the steady-state pipeline's allocation churn per message.

    Returns churn (bytes/message) for the copying and zero-copy paths,
    the reduction ratio, and the buffer pool's hit rate over the run.
    """
    sender, fmt, record, receiver = build_endpoints(PAYLOAD_BYTES)
    field = fmt.fields[0].name
    pool = set_pool(BufferPool())
    client, server, listener = tcp_pair()
    scratch_size = 2 * PAYLOAD_BYTES
    try:
        def copying_step():
            message = sender.encode(fmt, record)
            client.send(message)
            data = server.recv(timeout=5.0)
            view = receiver.decode_view(data)
            return view[field]

        def zero_copy_step():
            # The steady-state pattern: scratch cycles through the pool
            # per message (hits, after the first), send is synchronous,
            # so release-after-send is safe.
            scratch = pool.acquire(scratch_size)
            try:
                written = sender.encode_into(fmt, record, scratch)
                client.send(memoryview(scratch)[:written])
            finally:
                pool.release(scratch)
            data = server.recv_view(timeout=5.0)
            view = receiver.decode_view(data)
            return view[field]

        assert copying_step() == zero_copy_step()  # same record either way
        copy_churn = median_churn(copying_step, iterations=iterations)
        zero_churn = median_churn(zero_copy_step, iterations=iterations)
    finally:
        client.close()
        server.close()
        listener.close()
        set_pool(BufferPool())
    reduction = 1.0 - (zero_churn / copy_churn) if copy_churn else 0.0
    return {
        "copy_churn_bytes_per_message": copy_churn,
        "zero_copy_churn_bytes_per_message": zero_churn,
        "churn_reduction": reduction,
        "pool_hit_rate": pool.hit_rate,
        "pool_stats": pool.stats(),
    }


def run_throughput_ab(
    total: int = 4096, batch: int = 64, message_size: int = 128, trials: int = 3
) -> dict:
    """A/B messages/second: per-message ``send`` vs batched ``send_many``.

    The clock covers the send phase: the time for the sender to push
    every frame into the kernel — one ``sendmsg`` per batch vs one
    vectored ``sendall`` per message — while a concurrent ``recv_view``
    drain keeps the socket buffers from filling (it is not itself
    timed; receiver cost is identical in both arms and would only dilute
    the sender-side contrast this A/B isolates).  Each arm takes the
    best of ``trials`` runs, the standard defense against scheduler
    noise on a shared host.
    """
    message = bytes(message_size)

    def drain(server, count, done):
        for _ in range(count):
            server.recv_view(timeout=10.0)
        done.set()

    def timed(send_all):
        client, server, listener = tcp_pair()
        try:
            done = threading.Event()
            thread = threading.Thread(target=drain, args=(server, total, done))
            thread.start()
            started = time.perf_counter()
            send_all(client)
            elapsed = time.perf_counter() - started
            done.wait(timeout=30.0)
            thread.join(timeout=5.0)
        finally:
            client.close()
            server.close()
            listener.close()
        return total / elapsed

    def per_message(client):
        for _ in range(total):
            client.send(message)

    def batched(client):
        frames = [message] * batch
        for _ in range(total // batch):
            client.send_many(frames)

    per_message_mps = max(timed(per_message) for _ in range(trials))
    batched_mps = max(timed(batched) for _ in range(trials))
    return {
        "messages": total,
        "batch_size": batch,
        "message_bytes": message_size,
        "per_message_mps": per_message_mps,
        "batched_mps": batched_mps,
        "speedup": batched_mps / per_message_mps,
    }


def run_pool_steady_state(cycles: int = 200) -> dict:
    """Pool hit rate once the acquire/release cycle is warm."""
    pool = BufferPool()
    for _ in range(cycles):
        buffer = pool.acquire(2048)
        pool.release(buffer)
    return pool.stats()


# -- the acceptance tests ----------------------------------------------------


def test_zero_copy_halves_allocation_churn():
    result = run_alloc_ab()
    assert result["zero_copy_churn_bytes_per_message"] <= (
        0.5 * result["copy_churn_bytes_per_message"]
    ), result


def test_send_many_beats_per_message_sends():
    result = run_throughput_ab()
    assert result["speedup"] >= 1.3, result


def test_pool_hit_rate_converges():
    stats = run_pool_steady_state()
    assert stats["hit_rate"] > 0.9, stats


def test_encode_into_matches_encode_for_bench_format():
    sender, fmt, record, _ = build_endpoints()
    golden = sender.encode(fmt, record)
    buffer = bytearray(len(golden))
    written = sender.encode_into(fmt, record, buffer)
    assert bytes(buffer[:written]) == golden
