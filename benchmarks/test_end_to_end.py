"""Experiment C4b — end-to-end latency between two endpoints.

Paper (§5): "The final version of this paper will contain measurements
of end-to-end latency of communication between two endpoints.  These
comparisons will illustrate that the overhead introduced by using
XML-based metadata is negligible in the context of the total
transmission time."

We run that experiment: one-record request/response latency over a real
loopback TCP connection and over the in-process pipe, with formats
registered via xml2wire versus compiled-in PBIO metadata.  The protocol,
wire bytes and converters are identical in both cases — the measured
difference is pure noise, which is the paper's point.
"""

import threading

import pytest

from repro import (
    IOContext,
    RecordConnection,
    SPARC_32,
    X86_64,
    XML2Wire,
    connect,
    listen,
    make_pipe,
)
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload

from benchmarks.conftest import pbio_register_b


def xml2wire_context(arch):
    context = IOContext(arch)
    XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
    return context


def compiled_context(arch):
    context = IOContext(arch)
    context.adopt_format(pbio_register_b(arch))
    return context


def ping_pong_inproc(benchmark, make_context, airline):
    a, b = make_pipe()
    sender = RecordConnection(make_context(SPARC_32), a)
    echoer = RecordConnection(make_context(X86_64), b)
    record = airline.record_b()

    stop = threading.Event()

    def echo_loop():
        while not stop.is_set():
            try:
                received = echoer.recv(timeout=0.5)
            except Exception:
                continue
            echoer.send("ASDOffEvent", received.values)

    thread = threading.Thread(target=echo_loop, daemon=True)
    thread.start()

    def roundtrip():
        sender.send("ASDOffEvent", record)
        return sender.recv(timeout=5)

    roundtrip()  # warm converters and format push
    result = benchmark(roundtrip)
    stop.set()
    thread.join(timeout=2)
    assert result.values == record


class TestInprocLatency:
    def test_latency_with_xml2wire_metadata(self, benchmark, airline):
        ping_pong_inproc(benchmark, xml2wire_context, airline)

    def test_latency_with_compiled_metadata(self, benchmark, airline):
        ping_pong_inproc(benchmark, compiled_context, airline)


class TestTCPLatency:
    def _run(self, benchmark, make_context, airline):
        listener = listen()
        host, port = listener.address
        record = airline.record_b()
        stop = threading.Event()

        def server_loop():
            connection = RecordConnection(make_context(X86_64), listener.accept(timeout=10))
            while not stop.is_set():
                try:
                    received = connection.recv(timeout=0.5)
                except Exception:
                    continue
                connection.send("ASDOffEvent", received.values)

        thread = threading.Thread(target=server_loop, daemon=True)
        thread.start()
        client = RecordConnection(make_context(SPARC_32), connect(host, port))

        def roundtrip():
            client.send("ASDOffEvent", record)
            return client.recv(timeout=5)

        roundtrip()
        result = benchmark(roundtrip)
        stop.set()
        thread.join(timeout=2)
        client.close()
        listener.close()
        assert result.values == record

    def test_tcp_latency_with_xml2wire_metadata(self, benchmark, airline):
        self._run(benchmark, xml2wire_context, airline)

    def test_tcp_latency_with_compiled_metadata(self, benchmark, airline):
        self._run(benchmark, compiled_context, airline)
