"""Experiment C7 — server fan-out scalability.

Paper (§1): binary transmission matters for "server-based applications
in which single servers must provide information to large numbers of
clients", where "scalability to many information clients and sources
implies the need to reduce per-client or per-source processing".

The structural win measured here: an NDR server encodes each record
*once* and fans the same bytes out to N subscribers (the backbone routes
opaque buffers); a text-XML server still encodes once, but every client
pays a full XML parse, and the bytes fanned out are ~4-6x larger.  We
time one publish + N client decodes for N in {1, 8, 64, 256}.
"""

import pytest

from repro import IOContext, SPARC_32, X86_64, XMLTextCodec, XML2Wire
from repro.events import EventBackbone
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload

CLIENTS = [1, 8, 64, 256]


@pytest.mark.parametrize("clients", CLIENTS, ids=lambda c: f"{c}-clients")
def test_fanout_ndr(benchmark, clients, airline):
    sender = IOContext(SPARC_32)
    XML2Wire(sender).register_schema(ASDOFF_B_SCHEMA)
    fmt = sender.lookup_format("ASDOffEvent")
    record = airline.record_b()
    receivers = []
    for _ in range(clients):
        receiver = IOContext(X86_64)
        receiver.learn_format(fmt.to_wire_metadata())
        receiver.decode(sender.encode(fmt, record))  # warm converter
        receivers.append(receiver)

    def serve():
        message = sender.encode(fmt, record)  # encode once
        for receiver in receivers:
            receiver.decode(message)  # each client converts its copy

    benchmark(serve)


@pytest.mark.parametrize("clients", CLIENTS, ids=lambda c: f"{c}-clients")
def test_fanout_xmltext(benchmark, clients, airline):
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
    codec = XMLTextCodec(context.lookup_format("ASDOffEvent"))
    record = airline.record_b()

    def serve():
        message = codec.encode(record)  # encode once here too
        for _ in range(clients):
            codec.decode(message)  # each client parses XML text

    benchmark(serve)


def test_backbone_fanout_end_to_end(benchmark, airline):
    """The same comparison through the event backbone: 64 subscribers
    on three heterogeneous receiver architectures."""
    from repro.arch import ALPHA, X86_32

    backbone = EventBackbone()
    sender = IOContext(SPARC_32)
    XML2Wire(sender).register_schema(ASDOFF_B_SCHEMA)
    publisher = backbone.publisher("s", sender)
    record = airline.record_b()
    subscriptions = [
        backbone.subscribe("s", IOContext(arch))
        for arch in (X86_64, X86_32, ALPHA) * 21 + (X86_64,)
    ]
    publisher.publish("ASDOffEvent", record)  # pushes metadata
    for subscription in subscriptions:
        subscription.next(timeout=5)  # absorb + warm converters

    def fanout():
        publisher.publish("ASDOffEvent", record)
        for subscription in subscriptions:
            subscription.next(timeout=5)

    benchmark(fanout)
    assert len(subscriptions) == 64
