"""Shared benchmark fixtures and helpers.

Every module regenerates one experiment from DESIGN.md's index (T1, C1…
C6, A1/A2).  Helpers here build the paper's three structures both ways —
through xml2wire and through direct PBIO registration — on the Table 1
reference architecture (big-endian ILP32 SPARC; see DESIGN.md §3).
"""

import pytest

from repro import IOContext, SPARC_32, XML2Wire
from repro.arch import FieldDecl, layout_struct
from repro.pbio import IOField
from repro.workloads import (
    ASDOFF_A_SCHEMA,
    ASDOFF_B_SCHEMA,
    ASDOFF_CD_SCHEMA,
    AirlineWorkload,
)

#: Table 1 rows: (label, schema, format under test).
TABLE1_ROWS = [
    ("A/32B", ASDOFF_A_SCHEMA, "ASDOffEvent"),
    ("B/52B", ASDOFF_B_SCHEMA, "ASDOffEvent"),
    ("CD/180B", ASDOFF_CD_SCHEMA, "threeASDOffs"),
]


def xml2wire_register(schema, arch=SPARC_32):
    """The xml2wire path: parse the XML document and register."""
    tool = XML2Wire(IOContext(arch))
    return tool.register_schema(schema)[-1]


def pbio_fields_a(arch):
    lay = layout_struct(
        arch,
        "asdOff",
        [
            FieldDecl("cntrID", "char*"), FieldDecl("arln", "char*"),
            FieldDecl("fltNum", "int"), FieldDecl("equip", "char*"),
            FieldDecl("org", "char*"), FieldDecl("dest", "char*"),
            FieldDecl("off", "unsigned long"), FieldDecl("eta", "unsigned long"),
        ],
    )
    p, ul, i = arch.pointer_size, arch.sizeof("unsigned long"), arch.sizeof("int")
    fields = [
        IOField("cntrID", "string", p, lay.offsetof("cntrID")),
        IOField("arln", "string", p, lay.offsetof("arln")),
        IOField("fltNum", "integer", i, lay.offsetof("fltNum")),
        IOField("equip", "string", p, lay.offsetof("equip")),
        IOField("org", "string", p, lay.offsetof("org")),
        IOField("dest", "string", p, lay.offsetof("dest")),
        IOField("off", "unsigned integer", ul, lay.offsetof("off")),
        IOField("eta", "unsigned integer", ul, lay.offsetof("eta")),
    ]
    return fields, lay.size


def pbio_fields_b(arch):
    lay = layout_struct(
        arch,
        "asdOff",
        [
            FieldDecl("cntrID", "char*"), FieldDecl("arln", "char*"),
            FieldDecl("fltNum", "int"), FieldDecl("equip", "char*"),
            FieldDecl("org", "char*"), FieldDecl("dest", "char*"),
            FieldDecl("off", "unsigned long", count=5),
            FieldDecl("eta", "unsigned long*"), FieldDecl("eta_count", "int"),
        ],
    )
    p, ul, i = arch.pointer_size, arch.sizeof("unsigned long"), arch.sizeof("int")
    fields = [
        IOField("cntrID", "string", p, lay.offsetof("cntrID")),
        IOField("arln", "string", p, lay.offsetof("arln")),
        IOField("fltNum", "integer", i, lay.offsetof("fltNum")),
        IOField("equip", "string", p, lay.offsetof("equip")),
        IOField("org", "string", p, lay.offsetof("org")),
        IOField("dest", "string", p, lay.offsetof("dest")),
        IOField("off", "unsigned integer[5]", ul, lay.offsetof("off")),
        IOField("eta", "unsigned integer[eta_count]", ul, lay.offsetof("eta")),
        IOField("eta_count", "integer", i, lay.offsetof("eta_count")),
    ]
    return fields, lay.size


def pbio_register_a(arch=SPARC_32):
    """Direct PBIO registration of Structure A (the Figure 5 path)."""
    context = IOContext(arch)
    fields, size = pbio_fields_a(arch)
    return context.register_format("ASDOffEvent", fields, record_length=size)


def pbio_register_b(arch=SPARC_32):
    context = IOContext(arch)
    fields, size = pbio_fields_b(arch)
    return context.register_format("ASDOffEvent", fields, record_length=size)


def pbio_register_cd(arch=SPARC_32):
    """Direct PBIO registration of Structures C and D (Figure 11)."""
    context = IOContext(arch)
    fields, size = pbio_fields_b(arch)
    inner = context.register_format("ASDOffEvent", fields, record_length=size)
    double_size = arch.sizeof("double")
    outer_lay = layout_struct(
        arch,
        "threeASDOffs",
        [
            FieldDecl("one", _inner_layout(arch)),
            FieldDecl("bart", "double"),
            FieldDecl("two", _inner_layout(arch)),
            FieldDecl("lisa", "double"),
            FieldDecl("three", _inner_layout(arch)),
        ],
    )
    outer_fields = [
        IOField("one", "ASDOffEvent", size, outer_lay.offsetof("one")),
        IOField("bart", "double", double_size, outer_lay.offsetof("bart")),
        IOField("two", "ASDOffEvent", size, outer_lay.offsetof("two")),
        IOField("lisa", "double", double_size, outer_lay.offsetof("lisa")),
        IOField("three", "ASDOffEvent", size, outer_lay.offsetof("three")),
    ]
    return context.register_format(
        "threeASDOffs", outer_fields, record_length=outer_lay.size
    )


def _inner_layout(arch):
    return layout_struct(
        arch,
        "asdOff",
        [
            FieldDecl("cntrID", "char*"), FieldDecl("arln", "char*"),
            FieldDecl("fltNum", "int"), FieldDecl("equip", "char*"),
            FieldDecl("org", "char*"), FieldDecl("dest", "char*"),
            FieldDecl("off", "unsigned long", count=5),
            FieldDecl("eta", "unsigned long*"), FieldDecl("eta_count", "int"),
        ],
    )


PBIO_REGISTRARS = {
    "A/32B": pbio_register_a,
    "B/52B": pbio_register_b,
    "CD/180B": pbio_register_cd,
}


@pytest.fixture
def airline():
    return AirlineWorkload(seed=1204)
