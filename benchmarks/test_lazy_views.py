"""Ablation A3 — lazy record views versus eager conversion.

PBIO's homogeneous receive hands out pointers into the receive buffer;
:class:`~repro.pbio.RecordView` reproduces that: fields unpack only when
touched.  For selective consumers (a display point reading 2 of 64
fields) the view should win big; for consumers that touch everything the
eager generated converter should win (one batched unpack beats 64 lazy
ones).  Both ends of that trade-off are measured, so the crossover is
visible in the report.
"""

import pytest

from repro import IOContext, SPARC_32, XML2Wire
from repro.pbio import RecordView
from repro.pbio.codegen import make_generated_converter
from repro.pbio.encode import encode_record
from repro.workloads import SyntheticWorkload

FIELDS = 64


@pytest.fixture(scope="module")
def wide_record():
    workload = SyntheticWorkload(FIELDS, mix="mixed")
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(workload.schema)
    fmt = context.lookup_format("Synthetic")
    payload = encode_record(fmt, workload.record())
    return fmt, payload


def test_selective_access_eager(benchmark, wide_record):
    """Touch 2 of 64 fields after a full eager conversion."""
    fmt, payload = wide_record
    convert = make_generated_converter(fmt)

    def read_two():
        record = convert(payload)
        return record["f0"], record["f3"]

    benchmark(read_two)


def test_selective_access_lazy(benchmark, wide_record):
    """Touch 2 of 64 fields through a view: only those two unpack."""
    fmt, payload = wide_record

    def read_two():
        view = RecordView(fmt, payload)
        return view["f0"], view["f3"]

    benchmark(read_two)


def test_full_access_eager(benchmark, wide_record):
    fmt, payload = wide_record
    convert = make_generated_converter(fmt)
    names = fmt.field_names()

    def read_all():
        record = convert(payload)
        return [record[name] for name in names]

    benchmark(read_all)


def test_full_access_lazy(benchmark, wide_record):
    fmt, payload = wide_record
    names = fmt.field_names()

    def read_all():
        view = RecordView(fmt, payload)
        return [view[name] for name in names]

    benchmark(read_all)


def test_lazy_wins_selective_eager_wins_full(benchmark, wide_record):
    """The crossover, asserted."""
    import time

    fmt, payload = wide_record
    convert = make_generated_converter(fmt)
    names = fmt.field_names()

    def timed(func, rounds=2000):
        start = time.perf_counter()
        for _ in range(rounds):
            func()
        return time.perf_counter() - start

    lazy_selective = timed(lambda: RecordView(fmt, payload)["f0"])
    eager_selective = timed(lambda: convert(payload)["f0"])
    assert lazy_selective < eager_selective

    lazy_full = timed(lambda: [RecordView(fmt, payload)[n] for n in names], 300)
    eager_full = timed(lambda: convert(payload), 300)
    assert eager_full < lazy_full
    benchmark.extra_info["eager_over_lazy_selective"] = round(
        eager_selective / lazy_selective, 2
    )
    benchmark(lambda: RecordView(fmt, payload)["f0"])
