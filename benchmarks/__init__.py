"""Benchmark harness regenerating every table/figure and textual claim.

One module per experiment id from DESIGN.md's index; run with::

    pytest benchmarks/ --benchmark-only

and assemble the paper-versus-measured tables with::

    python benchmarks/report.py
"""
