"""Experiment C4 — metadata cost is start-up only, amortized over traffic.

Paper (§5): "metadata discovery and registration only occurs at stream
subscription time or when metadata changes... the associated costs do
not recur with each message exchange... the overall effect on
performance will be tolerable."

Two measurements:

- per-message send+receive cost is *identical* whether the format came
  from xml2wire or from compiled-in PBIO metadata (the data path never
  sees the XML);
- total cost of (discover + register + N messages) divided by N
  converges onto the bare per-message cost as N grows.
"""

import time

import pytest

from repro import IOContext, SPARC_32, X86_64, XML2Wire
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload

from benchmarks.conftest import pbio_register_b

MESSAGE_COUNTS = [1, 10, 100, 1000, 10000]


def build_pair(register):
    fmt = register()
    sender = IOContext(SPARC_32)
    fmt = sender.adopt_format(fmt)
    receiver = IOContext(X86_64)
    receiver.learn_format(fmt.to_wire_metadata())
    return sender, fmt, receiver


class TestPerMessageCostUnchanged:
    def test_message_roundtrip_with_xml2wire_format(self, benchmark, airline):
        sender, fmt, receiver = build_pair(
            lambda: XML2Wire(IOContext(SPARC_32)).register_schema(ASDOFF_B_SCHEMA)[0]
        )
        record = airline.record_b()
        receiver.decode(sender.encode(fmt, record))
        benchmark(lambda: receiver.decode(sender.encode(fmt, record)))

    def test_message_roundtrip_with_compiled_format(self, benchmark, airline):
        sender, fmt, receiver = build_pair(pbio_register_b)
        record = airline.record_b()
        receiver.decode(sender.encode(fmt, record))
        benchmark(lambda: receiver.decode(sender.encode(fmt, record)))


@pytest.mark.parametrize("count", MESSAGE_COUNTS, ids=lambda c: f"N={c}")
def test_discovery_amortization(benchmark, count, airline):
    """Time (registration + N messages); extra_info reports the
    per-message overhead attributable to xml2wire."""
    record = airline.record_b()

    def session():
        tool = XML2Wire(IOContext(SPARC_32))
        fmt = tool.register_schema(ASDOFF_B_SCHEMA)[0]
        receiver = IOContext(X86_64)
        receiver.learn_format(fmt.to_wire_metadata())
        for _ in range(count):
            receiver.decode(tool.context.encode(fmt, record))

    benchmark.pedantic(session, rounds=3, iterations=1)


def test_overhead_vanishes_at_scale(benchmark, airline):
    """Direct assertion: at N=10000 the xml2wire session costs within a
    few percent of the compiled-metadata session."""
    record = airline.record_b()
    count = 10000

    def run(register):
        best = float("inf")
        for _ in range(3):  # best-of-3 damps scheduler noise
            start = time.perf_counter()
            sender, fmt, receiver = build_pair(register)
            for _ in range(count):
                receiver.decode(sender.encode(fmt, record))
            best = min(best, time.perf_counter() - start)
        return best

    compiled = run(pbio_register_b)
    via_xml = run(
        lambda: XML2Wire(IOContext(SPARC_32)).register_schema(ASDOFF_B_SCHEMA)[0]
    )
    overhead = via_xml / compiled - 1.0
    assert overhead < 0.20, f"xml2wire session overhead {overhead:.1%} at N={count}"
    benchmark.extra_info["relative_overhead_at_10k"] = round(overhead, 4)
    sender, fmt, receiver = build_pair(pbio_register_b)
    receiver.decode(sender.encode(fmt, record))
    benchmark(lambda: receiver.decode(sender.encode(fmt, record)))
