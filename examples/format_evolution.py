#!/usr/bin/env python
"""Format evolution without recompilation (experiment E1, paper §7).

A running subscriber keeps working while the publisher's message format
evolves underneath it — the scenario that forces source-level changes
and recompilation in compiled-metadata and IDL systems:

1. v1 of a track format is published; a consumer subscribes.
2. The operator edits the schema *document on the metadata server*
   (adds a ``speed`` field).  No endpoint is recompiled or restarted.
3. A new publisher discovers v2 from the server and starts publishing;
   the old consumer keeps decoding (the extra field is dropped), and a
   new consumer sees the full v2 records.
4. The old sender keeps publishing v1; the new consumer defaults the
   missing field.  Every combination interoperates.

Run:  python examples/format_evolution.py
"""

from repro import (
    EventBackbone,
    IOContext,
    MetadataClient,
    MetadataServer,
    SPARC_32,
    X86_64,
    XML2Wire,
)

TRACK_V1 = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="Track">
    <xsd:element name="flight" type="xsd:string" />
    <xsd:element name="alt" type="xsd:integer" />
  </xsd:complexType>
</xsd:schema>
"""

TRACK_V2 = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="Track">
    <xsd:element name="flight" type="xsd:string" />
    <xsd:element name="alt" type="xsd:integer" />
    <xsd:element name="speed" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>
"""


def main() -> None:
    backbone = EventBackbone()
    with MetadataServer() as server:
        url = server.publish_schema("/schemas/track.xsd", TRACK_V1)
        client = MetadataClient(ttl=0)  # always fetch fresh metadata

        # A v1 publisher and a v1 consumer, both via remote discovery.
        v1_sender = IOContext(SPARC_32)
        XML2Wire(v1_sender).register_url(url, client)
        v1_publisher = backbone.publisher("tracks", v1_sender)

        v1_consumer = IOContext(X86_64)
        XML2Wire(v1_consumer).register_url(url, client)
        v1_subscription = backbone.subscribe("tracks", v1_consumer, expect="Track")

        v1_publisher.publish("Track", {"flight": "DL100", "alt": 31000})
        event = v1_subscription.next(timeout=5)
        print(f"v1 consumer sees v1 record: {event.values}")

        # --- The format evolves: one edit on the metadata server. ---
        server.publish_schema("/schemas/track.xsd", TRACK_V2)
        print("\nschema document updated on the server (added 'speed')")
        print("no endpoint recompiled; running consumers untouched\n")

        # A new publisher discovers v2 and starts sending richer records.
        v2_sender = IOContext(X86_64)
        XML2Wire(v2_sender).register_url(url, client)
        v2_publisher = backbone.publisher("tracks", v2_sender)
        v2_publisher.publish(
            "Track", {"flight": "DL200", "alt": 35000, "speed": 451.0}
        )

        # The old consumer still works: the unknown field is dropped.
        event = v1_subscription.next(timeout=5)
        print(f"v1 consumer sees v2 record (speed dropped): {event.values}")

        # A new consumer discovers v2 and sees everything.
        v2_consumer = IOContext(X86_64)
        XML2Wire(v2_consumer).register_url(url, client)
        v2_subscription = backbone.subscribe("tracks", v2_consumer, expect="Track")
        v2_publisher.publish(
            "Track", {"flight": "DL201", "alt": 36000, "speed": 460.0}
        )
        event = v2_subscription.next(timeout=5)
        print(f"v2 consumer sees v2 record in full:       {event.values}")

        # And the old publisher keeps sending v1: the new consumer
        # defaults the missing field instead of failing.
        v1_publisher.publish("Track", {"flight": "DL101", "alt": 29000})
        event = v2_subscription.next(timeout=5)
        print(f"v2 consumer sees v1 record (speed=0.0):    {event.values}")

        print("\nall four version combinations interoperated: OK")


if __name__ == "__main__":
    main()
