#!/usr/bin/env python
"""Columnar bulk streaming: batch frames vs per-record NDR.

When a stream is thousands of records of the *same* format — the
paper's bulk-scientific case — the per-record costs (one header, one
dict, one syscall per record) dominate.  A columnar batch frame
(kind 4, docs/PROTOCOL.md §14) ships N records as per-field column
blocks instead: fixed fields become packed arrays, dynamic arrays
become u32 offsets into a per-column heap, and the whole frame goes
out in one vectored send.

This example streams bulk telemetry over a real localhost socket both
ways and prints the records/second A/B, then shows the receive-side
payoff: zero-copy per-column access through ColumnBatchView.

Run:  python examples/columnar_stream.py [batch-size]
"""

import sys
import threading
import time

from repro import IOContext, XML2Wire
from repro.pbio.columnar import _numpy_or_none
from repro.transport import connect, listen

SENSOR_SCHEMA = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="SensorFrame">
    <xsd:element name="seq" type="xsd:unsigned-int" />
    <xsd:element name="timestamp" type="xsd:double" />
    <xsd:element name="value" type="xsd:double" />
    <xsd:element name="samples" type="xsd:double" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>
"""

RECORDS = 2048
SAMPLES = 64


def make_records(numpy):
    records = []
    for seq in range(RECORDS):
        samples = [seq + 0.25 * j for j in range(SAMPLES)]
        if numpy is not None:
            # The bulk-sender idiom: sample arrays held as ndarrays so
            # the encoder can vectorize the heap conversion.
            samples = numpy.asarray(samples, dtype="<f8")
        records.append({
            "seq": seq,
            "timestamp": 954547200.0 + seq * 0.001,
            "value": (seq % 1000) * 0.25,
            "samples": samples,
            "samples_count": SAMPLES,
        })
    return records


def tcp_pair():
    listener = listen()
    host, port = listener.address
    box = {}
    thread = threading.Thread(
        target=lambda: box.update(server=listener.accept(timeout=5.0))
    )
    thread.start()
    client = connect(host, port)
    thread.join(timeout=5.0)
    return client, box["server"], listener


def timed(send_all, recv_all):
    client, server, listener = tcp_pair()
    try:
        done = threading.Event()
        thread = threading.Thread(target=lambda: (recv_all(server), done.set()))
        thread.start()
        start = time.perf_counter()
        send_all(client)
        done.wait(timeout=60.0)
        elapsed = time.perf_counter() - start
        thread.join(timeout=5.0)
    finally:
        client.close()
        server.close()
        listener.close()
    return RECORDS / elapsed


def main() -> None:
    batch_size = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    numpy = _numpy_or_none()

    sender = IOContext()
    fmt = XML2Wire(sender).register_schema(SENSOR_SCHEMA)[0]
    receiver = IOContext()
    receiver.learn_format(fmt.to_wire_metadata())
    records = make_records(numpy)

    print(f"{RECORDS} SensorFrame records x {SAMPLES} double samples, "
          f"batch size {batch_size}, numpy={'yes' if numpy else 'no'}\n")

    # Arm 1: one NDR message per record.
    def per_record_send(client):
        for record in records:
            client.send(sender.encode(fmt, record))

    def per_record_recv(server):
        for _ in records:
            receiver.decode(server.recv(timeout=10.0))

    per_record = timed(per_record_send, per_record_recv)

    # Arm 2: columnar batches — encode_batch_iov hands the transport a
    # list of buffers and send_batch frames them into one writev.
    chunks = [records[i:i + batch_size]
              for i in range(0, RECORDS, batch_size)]

    def batch_send(client):
        for chunk in chunks:
            client.send_batch(sender.encode_batch_iov(fmt, chunk))

    def batch_recv(server):
        for _ in chunks:
            if numpy is not None:
                view = receiver.decode_batch_view(server.recv_view(timeout=10.0))
                view.column("value")            # zero-copy ndarray
                view.dynamic_column("samples")  # flattened heap + counts
            else:
                list(receiver.decode_batch(server.recv(timeout=10.0)))

    columnar = timed(batch_send, batch_recv)

    print(f"{'pipeline':<22} {'records/s':>12} {'speedup':>8}")
    print(f"{'per-record NDR':<22} {per_record:>12,.0f} {'1.0x':>8}")
    print(f"{'columnar batches':<22} {columnar:>12,.0f} "
          f"{columnar / per_record:>7.1f}x")

    # The receive-side view, up close: columns are read in place.
    message = sender.encode_batch(fmt, chunks[0])
    view = receiver.decode_batch_view(message)
    print(f"\none {len(message):,}-byte frame carries {view.count} records")
    if numpy is not None:
        values = view.column("value")
        flat, counts = view.dynamic_column("samples")
        print(f"view.column('value')        -> ndarray{values.shape}, "
              f"mean {values.mean():.2f}")
        print(f"view.dynamic_column(...)    -> {flat.shape[0]} samples, "
              f"counts all {counts[0]}")
    print(f"view.row(0)['seq']          -> {view.row(0)['seq']} "
          f"(lazy dicts when you want rows)")


if __name__ == "__main__":
    main()
