#!/usr/bin/env python
"""The airline operational information system of Figures 1 and 3.

Capture points (FAA flight data, NOAA weather, a data-mining process)
publish onto an event backbone.  Every stream's metadata lives on a
metadata server as an XML Schema document; consumers discover formats at
run time with xml2wire — including a "handheld" display point that joins
after traffic has started flowing.

Each capture point runs on a *different simulated architecture*, so the
backbone carries a mix of byte orders and word sizes, and every consumer
performs real conversions.

Run:  python examples/airline_ois.py
"""

from repro import (
    EventBackbone,
    IOContext,
    MetadataClient,
    MetadataServer,
    XML2Wire,
    get_architecture,
)
from repro.workloads import (
    ASDOFF_B_SCHEMA,
    AirlineWorkload,
    MiningWorkload,
    WeatherWorkload,
)

STREAMS = [
    # (stream name, schema, format name, workload, capture-point machine)
    ("flights.departures", ASDOFF_B_SCHEMA, "ASDOffEvent",
     AirlineWorkload(seed=1), "sparc_32"),
    ("weather.surface", WeatherWorkload.schema, "SurfaceObservation",
     WeatherWorkload(seed=2), "x86_32"),
    ("mining.rules", MiningWorkload.schema, "RuleDiscovery",
     MiningWorkload(seed=3), "x86_64"),
]


def record_for(workload):
    if isinstance(workload, AirlineWorkload):
        return workload.record_b()
    return workload.record()


def main() -> None:
    backbone = EventBackbone()

    # The metadata server publishes every stream's schema document.
    with MetadataServer() as metadata_server:
        publishers = []
        for stream, schema, format_name, workload, arch_name in STREAMS:
            url = metadata_server.publish_schema(f"/schemas/{stream}.xsd", schema)
            capture_context = IOContext(get_architecture(arch_name))
            XML2Wire(capture_context).register_schema(schema)
            publisher = backbone.publisher(stream, capture_context)
            publisher.advertise_metadata(url)
            publishers.append((publisher, format_name, workload))
            print(f"capture point on {arch_name:8} -> stream {stream!r}")
            print(f"  metadata at {url}")

        # A display point subscribes to everything, discovering each
        # stream's format from the metadata server before any data moves.
        display = IOContext()  # the real host architecture
        display_tool = XML2Wire(display)
        client = MetadataClient()
        for stream, _, _, _, _ in STREAMS:
            url = backbone.metadata_url(stream) or metadata_server.url_for(
                f"/schemas/{stream}.xsd"
            )
            display_tool.register_url(url, client)
        subscription = backbone.subscribe("*", display)

        # Traffic flows.
        print("\n--- first burst: 3 records per stream ---")
        for publisher, format_name, workload in publishers:
            for _ in range(3):
                publisher.publish(format_name, record_for(workload))

        for _ in range(9):
            event = subscription.next(timeout=5)
            summary = _summarize(event)
            print(f"  [{event.stream:20}] {summary}")

        # A handheld joins late: the backbone replays format metadata, so
        # it decodes without bothering any capture point.
        print("\n--- a handheld device joins late ---")
        handheld = IOContext(get_architecture("arm_32"))
        late = backbone.subscribe("flights.*", handheld)
        for publisher, format_name, workload in publishers[:1]:
            publisher.publish(format_name, record_for(workload))
        event = late.next(timeout=5)
        print(f"  handheld decoded [{event.stream}]: flight "
              f"{event['arln']}{event['fltNum']} {event['org']}->{event['dest']}")

        # Broker statistics: the amortization story in numbers.
        print("\n--- backbone statistics ---")
        for stream in backbone.streams():
            stats = backbone.stats(stream)
            print(f"  {stream:20} data={stats.data_messages:3} "
                  f"metadata={stats.metadata_messages} "
                  f"bytes={stats.bytes_routed}")


def _summarize(event) -> str:
    values = event.values
    if event.format_name == "ASDOffEvent":
        return (f"flight {values['arln']}{values['fltNum']} "
                f"{values['org']}->{values['dest']} etas={values['eta']}")
    if event.format_name == "SurfaceObservation":
        return (f"{values['station']} {values['temperature']:.1f}C "
                f"wind {values['wind_dir']:03d}@{values['wind_speed']}kt")
    return (f"rule #{values['rule_id']} {values['antecedent']} => "
            f"{values['consequent']} (conf {values['confidence']:.2f})")


if __name__ == "__main__":
    main()
