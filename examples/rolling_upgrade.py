#!/usr/bin/env python
"""Rolling upgrade at scale: lineage, fused projections, bounded caches.

The PROTOCOL §16 tour.  A fleet upgrades its track format from v1 to
v2 *while the stream stays live*:

1. Old (v1) and new (v2) publishers interleave on one broker stream;
   subscribers on both versions keep decoding — new fields dropped for
   the v1 subscriber, missing fields defaulted for the v2 subscriber —
   through **fused decode+project converters** compiled on first miss.
2. A shared **format lineage** registry chains the versions; a
   metadata server answers ``GET /lineage/<id>`` with the ancestry
   document and ``GET /lineage/<wire>/compat/<native>`` with the
   compatibility relation, so operators can ask "what changed, and who
   needs a projection?" before the upgrade, not during it.
3. The **bounded converter cache** reports hits/misses/evictions: two
   wire generations cost exactly two compiled converters per receiver,
   however long the stream runs.

Run:  python examples/rolling_upgrade.py
"""

from repro import MetadataClient, MetadataServer
from repro.arch import SPARC_32, X86_64
from repro.events.remote import BrokerServer, RemoteBackboneClient
from repro.pbio import FormatLineage, IOContext, IOField
from repro.pbio.evolution import compare_formats, describe_projection


def track_fields(arch, version):
    fields = [
        IOField("flight", "string", arch.pointer_size, 0),
        IOField("alt", "integer", 4, arch.pointer_size),
    ]
    if version >= 2:
        fields.append(IOField("speed", "double", 8, arch.pointer_size + 8))
    return fields


def main() -> None:
    lineage = FormatLineage()

    # --- the fleet, mid-upgrade -----------------------------------------
    old_sender = IOContext(SPARC_32, lineage=lineage)
    v1 = old_sender.register_format("track", track_fields(SPARC_32, 1))
    new_sender = IOContext(X86_64, lineage=lineage)
    v2 = new_sender.register_format("track", track_fields(X86_64, 2))

    print(f"v1 id {v1.format_id.hex()} on {v1.arch.name}")
    print(f"v2 id {v2.format_id.hex()} on {v2.arch.name}")
    print(f"relation v2 -> v1: {compare_formats(v2, v1).value}")
    for step in describe_projection(v2, v1):
        print(f"  {step}")

    # --- lineage answers over HTTP, before any traffic flows ------------
    with MetadataServer() as server:
        server.catalog.attach_lineage(lineage)
        host, port = server.address
        base = f"http://{host}:{port}"
        client = MetadataClient()
        document = client.get_lineage(base, v2.format_id)
        print(f"\nGET /lineage/{v2.format_id.hex()}:")
        print(f"  version {document['version']}, parent {document['parent']}")
        answer = client.get_compatibility(base, v2.format_id, v1.format_id)
        print(f"GET .../compat/...: relation={answer['relation']}, "
              f"projection_needed={answer['projection_needed']}")

    # --- the live stream -------------------------------------------------
    with BrokerServer() as broker:
        host, port = broker.address
        v1_rx = IOContext(X86_64)
        v1_rx.register_format("track", track_fields(X86_64, 1))
        v2_rx = IOContext(SPARC_32)
        v2_rx.register_format("track", track_fields(SPARC_32, 2))

        v1_sub = RemoteBackboneClient.connect(host, port, v1_rx)
        v1_sub.subscribe("tracks")
        v2_sub = RemoteBackboneClient.connect(host, port, v2_rx)
        v2_sub.subscribe("tracks")

        old_client = RemoteBackboneClient.connect(host, port, old_sender)
        new_client = RemoteBackboneClient.connect(host, port, new_sender)
        old_pub = old_client.publisher("tracks")
        new_pub = new_client.publisher("tracks")

        # Old and new publishers interleave mid-upgrade.
        old_pub.publish("track", {"flight": "A", "alt": 1})
        new_pub.publish("track", {"flight": "B", "alt": 2, "speed": 99.0})
        old_pub.publish("track", {"flight": "C", "alt": 3})

        print("\nv1 subscriber (new field dropped):")
        for _ in range(3):
            print(f"  {v1_sub.next_event(timeout=5, expect='track').values}")
        print("v2 subscriber (missing field defaulted):")
        for _ in range(3):
            print(f"  {v2_sub.next_event(timeout=5, expect='track').values}")

        for stats in (v1_rx.converter_cache_stats(), v2_rx.converter_cache_stats()):
            print(f"converter cache: size={stats['size']} builds={stats['builds']} "
                  f"hits={stats['hits']} evictions={stats['evictions']}")

        for c in (v1_sub, v2_sub, old_client, new_client):
            c.close()


if __name__ == "__main__":
    main()
