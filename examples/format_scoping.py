#!/usr/bin/env python
"""Format scoping: per-audience slices of one information stream (§4.4).

One capture point publishes full departure records.  Two audiences see
different things:

- an **operations console** subscribes to the full stream and discovers
  the full schema from the metadata server;
- a **public display** subscribes to the ``.public`` scope and is served
  a *redacted* schema by the server's dynamic-generation hook — it never
  learns the hidden fields even exist.

The broker stays payload-agnostic throughout: scoping happens at the
metadata level (which schema each audience can discover) and the
publication level (which slice flows on which stream).

Run:  python examples/format_scoping.py
"""

from repro import EventBackbone, IOContext, MetadataClient, MetadataServer, XML2Wire
from repro.arch import SPARC_32, X86_64
from repro.events.scoping import ScopedPublisher
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload

PUBLIC_FIELDS = ["arln", "fltNum", "org", "dest"]


def main() -> None:
    backbone = EventBackbone()
    with MetadataServer() as server:
        # The capture point defines the stream and its public scope.
        publisher = ScopedPublisher(
            backbone,
            "flights.departures",
            IOContext(SPARC_32),
            ASDOFF_B_SCHEMA,
            "ASDOffEvent",
            {"public": PUBLIC_FIELDS},
        )

        # The metadata server serves a different document per audience.
        def schema_for_requestor(request):
            if "role=ops" in request.path:
                return ASDOFF_B_SCHEMA
            return publisher.scoped_schema_xml("public")

        url = server.publish_dynamic("/schemas/departures.xsd", schema_for_requestor)
        print(f"metadata at {url}?role=<audience>\n")

        client = MetadataClient(ttl=0)

        # Operations console: full schema, full stream.
        ops_context = IOContext(X86_64)
        XML2Wire(ops_context).register_url(f"{url}?role=ops", client)
        ops = backbone.subscribe("flights.departures", ops_context)
        print("ops console discovered:",
              ops_context.lookup_format("ASDOffEvent").field_names())

        # Public display: redacted schema, scoped stream.
        display_context = IOContext(X86_64)
        XML2Wire(display_context).register_url(f"{url}?role=public", client)
        display = backbone.subscribe("flights.departures.public", display_context)
        print("public display discovered:",
              display_context.lookup_format("ASDOffEvent__public").field_names())

        # Traffic.
        workload = AirlineWorkload(seed=1204)
        for _ in range(3):
            publisher.publish(workload.record_b())

        print("\nops console sees (full records):")
        for _ in range(3):
            values = ops.next(timeout=5).values
            print(f"  {values['arln']}{values['fltNum']:<5} "
                  f"{values['org']}->{values['dest']} "
                  f"center={values['cntrID']} equip={values['equip']} "
                  f"offs={values['off'][:2]}...")

        print("\npublic display sees (redacted):")
        for _ in range(3):
            values = display.next(timeout=5).values
            print(f"  {values['arln']}{values['fltNum']:<5} "
                  f"{values['org']}->{values['dest']}  "
                  f"(fields: {sorted(values)})")

        print("\nsame capture point, two audiences, zero leakage: OK")


if __name__ == "__main__":
    main()
