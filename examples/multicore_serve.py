#!/usr/bin/env python
"""The multi-core serving plane: worker pools plus shared-memory rings.

Part 1 boots a :class:`~repro.mp.pool.WorkerPool` — N worker processes
sharing one listening port (``SO_REUSEPORT`` kernel accept sharding
where the platform has it, an accept-handoff dealer otherwise) — and
shows the three things that make it a pool rather than N servers:

- requests land on *different* workers (``GET /mp/worker``),
- a publish through any entry point is visible on every worker,
- a SIGKILL'd worker respawns with the full catalog snapshot, so the
  crash loses no documents.

Part 2 runs the PBIO connection protocol from
``heterogeneous_pair.py`` over a :class:`~repro.mp.shm.ShmChannel` —
two shared-memory SPSC rings instead of a socket.  The child process
is a simulated SPARC machine; records cross process boundaries with
no syscalls or copies on the data path, and the receiver decodes them
straight out of ring memory via ``recv_view``.

Run:  PYTHONPATH=src python examples/multicore_serve.py
"""

import json
import os
import signal
import time
from multiprocessing import get_context

from repro import IOContext, RecordConnection, SPARC_32, X86_64, XML2Wire
from repro.metaserver.client import http_get, http_post
from repro.mp.pool import WorkerPool
from repro.mp.shm import ShmChannel
from repro.workloads import ASDOFF_B_SCHEMA, MiningWorkload

RECORDS = 5


def wait_until(predicate, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise TimeoutError("condition not met within %.1fs" % timeout)


# -- part 1: the worker pool ----------------------------------------------------

def pool_tour() -> None:
    with WorkerPool(workers=2) as pool:
        print(f"[pool] {pool.mode} mode, {len(pool.status().workers)} workers "
              f"on {pool.host}:{pool.port}")

        # Publish through the parent: both workers serve it immediately.
        url = pool.publish_schema("/schemas/asdoff.xsd", ASDOFF_B_SCHEMA)
        assert http_get(url) == ASDOFF_B_SCHEMA.encode("utf-8")
        print(f"[pool] published {url}")

        # Distinct client connections land on distinct workers.
        seen = set()
        for _ in range(40):
            seen.add(json.loads(http_get(pool.url_for("/mp/worker")))["worker"])
            if len(seen) == 2:
                break
        print(f"[pool] requests sharded across workers {sorted(seen)}")

        # Publish *through a worker*: it flows worker -> parent -> the
        # other worker, so any entry point keeps the catalog coherent.
        http_post(pool.url_for("/mp/publish?path=/late/doc"), b"<late/>",
                  content_type="application/xml")
        wait_until(lambda: http_get(pool.url_for("/late/doc")) == b"<late/>")
        print("[pool] client POST /mp/publish visible pool-wide")

        # Kill a worker the hard way.  The monitor respawns it and
        # replays the snapshot before it serves, so nothing is lost.
        victim = pool.status().workers[0].pid
        print(f"[pool] *** SIGKILL worker pid {victim} ***")
        os.kill(victim, signal.SIGKILL)
        wait_until(lambda: pool.status().total_respawns >= 1)
        wait_until(lambda: pool.status().alive == 2)
        assert http_get(url) == ASDOFF_B_SCHEMA.encode("utf-8")
        assert http_get(pool.url_for("/late/doc")) == b"<late/>"
        status = pool.status()
        print(f"[pool] respawned: {status.alive}/2 alive, "
              f"{status.total_respawns} respawn(s), no documents lost")


# -- part 2: records over shared-memory rings -----------------------------------

def shm_producer(uri: str) -> None:
    """Spawn target: a 'SPARC' machine streaming records into the ring."""
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(MiningWorkload.schema)
    workload = MiningWorkload(seed=21)
    connection = RecordConnection(context, ShmChannel.attach(uri))
    for _ in range(RECORDS):
        connection.send("RuleDiscovery", workload.record())
    connection.close()


def shm_tour() -> None:
    channel, endpoint = ShmChannel.create()
    producer = get_context("spawn").Process(
        target=shm_producer, args=(endpoint.uri(),), daemon=True
    )
    producer.start()

    connection = RecordConnection(IOContext(X86_64), channel)
    print(f"[shm] attached {endpoint.uri()}")
    for index in range(RECORDS):
        values = connection.recv(timeout=10).values
        print(f"[shm] #{index + 1} rule {values['rule_id']}: "
              f"{values['antecedent']} => {values['consequent']}")
    stats = channel.stats()
    print(f"[shm] {stats['recv']['frames']} frames, "
          f"{stats['recv']['bytes']} B received — no sockets involved")
    connection.close()
    producer.join(timeout=10)


def main() -> None:
    pool_tour()
    print()
    shm_tour()
    print("\ndone: multi-core pool + shared-memory transport OK")


if __name__ == "__main__":
    main()
