#!/usr/bin/env python
"""The airline stream consumed from the asyncio plane.

The capture point is the paper's unchanged shape — a threaded socket
client publishing NDR-encoded flight events — but the broker and the
display point run on a single asyncio event loop (``repro.aio``).  No
gateway, no re-encoding: both planes speak the identical wire format
(docs/PROTOCOL.md §10), so a threaded publisher and an async subscriber
meet on the same broker.

Also shown: the async metadata client resolving the stream's schema
with pipelined requests on one keep-alive connection.

Run:  python examples/async_stream.py
"""

import asyncio
import threading

from repro import IOContext, XML2Wire, get_architecture
from repro.aio import (
    AsyncBackboneClient,
    AsyncEventBroker,
    AsyncMetadataClient,
    AsyncMetadataServer,
)
from repro.events.remote import RemoteBackboneClient
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload

RECORDS = 8


def sync_capture_point(host: str, port: int, records: list[dict]) -> None:
    """A threaded capture point on a simulated big-endian SPARC."""
    context = IOContext(get_architecture("sparc_32"))
    XML2Wire(context).register_schema(ASDOFF_B_SCHEMA)
    client = RemoteBackboneClient.connect(host, port, context)
    publisher = client.publisher("flights.departures")
    for record in records:
        publisher.publish("ASDOffEvent", record)
    client.flush()  # barrier: every event routed before we disconnect
    client.close()


async def main() -> None:
    async with AsyncMetadataServer() as metadata:
        url = metadata.publish_schema("/flights.xsd", ASDOFF_B_SCHEMA)
        print(f"schema published at {url}")

        async with AsyncEventBroker() as broker:
            host, port = broker.address
            print(f"async event broker listening on {host}:{port}\n")

            # The async display point subscribes first...
            subscriber = await AsyncBackboneClient.connect(
                host, port, IOContext(get_architecture("x86_64"))
            )
            await subscriber.subscribe("flights.*")

            # ...then the sync capture point publishes from a thread.
            workload = AirlineWorkload(seed=1204)
            records = [workload.record_b() for _ in range(RECORDS)]
            capture = threading.Thread(
                target=sync_capture_point, args=(host, port, records)
            )
            capture.start()

            print("async display point (x86_64) receives:")
            received = []
            for _ in range(RECORDS):
                event = await subscriber.next_event(timeout=10)
                values = event.values
                received.append(values)
                print(f"  {values['arln']}{values['fltNum']:<5} "
                      f"{values['org']}->{values['dest']} "
                      f"etas={len(values['eta'])}")
            capture.join()
            await subscriber.close()
            assert received == records
            print("\nsync-published stream decoded on the async plane: OK")

        # A late joiner resolving metadata: one connection, one batch.
        async with AsyncMetadataClient() as client:
            bodies = await client.get_many([url] * 5)
            print(f"pipelined metadata fetch: {len(bodies)} responses over "
                  f"{client.connections_opened} keep-alive connection(s)")
            assert client.connections_opened == 1


if __name__ == "__main__":
    asyncio.run(main())
