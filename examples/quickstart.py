#!/usr/bin/env python
"""Quickstart: the full xml2wire pipeline of the paper's Figure 2.

XML metadata  →  xml2wire  →  Catalog of Format/Field structures
              →  PBIO metadata & format descriptors
              →  application data encoded to a wire-format buffer
              →  decoded on a *different* simulated architecture.

Run:  python examples/quickstart.py
"""

from repro import IOContext, SPARC_32, X86_64, XML2Wire, bind

# The message format is described openly, in XML Schema — no struct
# declarations compiled into this "application".  This is the paper's
# Figure 9 (Structure B: strings, a static array, a dynamic array).
ASDOFF_SCHEMA = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema"
    targetNamespace="http://www.cc.gatech.edu/pmw/schemas">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="cntrID" type="xsd:string" />
    <xsd:element name="arln" type="xsd:string" />
    <xsd:element name="fltNum" type="xsd:integer" />
    <xsd:element name="equip" type="xsd:string" />
    <xsd:element name="org" type="xsd:string" />
    <xsd:element name="dest" type="xsd:string" />
    <xsd:element name="off" type="xsd:unsigned-long" minOccurs="5" maxOccurs="5" />
    <xsd:element name="eta" type="xsd:unsigned-long" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>
"""


def main() -> None:
    # --- the sender: a (simulated) big-endian ILP32 SPARC capture point.
    sender = IOContext(SPARC_32)
    tool = XML2Wire(sender)

    # Discovery + registration: parse the XML, compute this machine's
    # native layout, register PBIO metadata.  Done once, at startup.
    (asdoff,) = tool.register_schema(ASDOFF_SCHEMA)
    print(f"registered {asdoff.name!r} on {sender.arch.name}:")
    print(f"  native structure size: {asdoff.record_length} bytes")
    for field in asdoff.fields:
        print(f"  {{ {field.name!r:10} {field.type!r:30} "
              f"size {field.size}, offset {field.offset} }}")

    # Binding: a marshaling token for this format.
    token = bind(sender, asdoff)

    # Marshaling: plain PBIO/NDR — xml2wire is out of the data path.
    departure = {
        "cntrID": "ZTL",
        "arln": "DL",
        "fltNum": 1204,
        "equip": "B757",
        "org": "ATL",
        "dest": "LAX",
        "off": [955809000, 955809060, 955809120, 955809180, 955809240],
        "eta": [955812600, 955812900],
        "eta_count": 2,
    }
    token.check(departure)  # structural pre-validation
    message = token.encode(departure)
    print(f"\nencoded message: {len(message)} bytes "
          f"(16-byte header + native-layout record + variable section)")

    # --- the receiver: a little-endian LP64 x86-64 display point.
    receiver = IOContext(X86_64)
    receiver.learn_format(asdoff.to_wire_metadata())  # once per format
    decoded = receiver.decode(message)
    print(f"\ndecoded on {receiver.arch.name} "
          f"(byte order and word size differ -> real conversion ran):")
    for name, value in decoded.values.items():
        print(f"  {name:8} = {value!r}")
    assert decoded.values == departure
    print("\nround trip exact: OK")


if __name__ == "__main__":
    main()
