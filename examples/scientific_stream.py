#!/usr/bin/env python
"""High-volume scientific data: why the wire format matters.

The paper's motivating class of applications: "high performance codes
moving scientific or engineering data", where binary transmission is
mandatory.  This example streams atmospheric-chemistry snapshots (a few
scalars plus a large double array) through all three wire formats over
the same in-process channel and reports throughput and bytes moved —
the shape of the paper's §1 claims, live:

- NDR beats XDR (no canonical-format conversion),
- both beat text XML by a wide margin (binary→ASCII→binary + 6-8x size).

Run:  python examples/scientific_stream.py [elements-per-record]
"""

import sys
import time

from repro import IOContext, SPARC_32, X86_64, XDRCodec, XMLTextCodec, XML2Wire

CHEM_SCHEMA = """<?xml version="1.0"?>
<xsd:schema xmlns:xsd="http://www.w3.org/1999/XMLSchema">
  <xsd:complexType name="ChemSnapshot">
    <xsd:element name="step" type="xsd:unsigned-int" />
    <xsd:element name="sim_time" type="xsd:double" />
    <xsd:element name="species" type="xsd:string" />
    <xsd:element name="lat_bands" type="xsd:short" />
    <xsd:element name="concentrations" type="xsd:double" minOccurs="0" maxOccurs="*" />
  </xsd:complexType>
</xsd:schema>
"""

RECORDS = 200


def make_record(step: int, elements: int) -> dict:
    return {
        "step": step,
        "sim_time": step * 0.25,
        "species": "O3",
        "lat_bands": 64,
        "concentrations": [((step + i) % 97) * 1e-9 for i in range(elements)],
        "concentrations_count": elements,
    }


def run_ndr(sender, receiver, fmt, records):
    receiver.learn_format(fmt.to_wire_metadata())
    start = time.perf_counter()
    moved = 0
    for record in records:
        message = sender.encode(fmt, record)
        moved += len(message)
        receiver.decode(message)
    return time.perf_counter() - start, moved


def run_codec(codec_cls, sender_fmt, receiver_fmt, records):
    encoder = codec_cls(sender_fmt)
    decoder = codec_cls(receiver_fmt)
    start = time.perf_counter()
    moved = 0
    for record in records:
        data = encoder.encode(record)
        moved += len(data)
        decoder.decode(data)
    return time.perf_counter() - start, moved


def main() -> None:
    elements = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    records = [make_record(step, elements) for step in range(RECORDS)]
    logical = elements * 8

    sender = IOContext(SPARC_32)
    receiver = IOContext(X86_64)
    fmt = XML2Wire(sender).register_schema(CHEM_SCHEMA)[0]
    receiver_fmt = XML2Wire(receiver).register_schema(CHEM_SCHEMA)[0]

    print(f"{RECORDS} records x {elements} doubles "
          f"(~{logical / 1024:.0f} KiB of payload each), "
          f"sparc_32 sender -> x86_64 receiver\n")
    print(f"{'wire format':<12} {'total time':>10} {'MB moved':>9} "
          f"{'MB/s':>8} {'vs NDR':>7}")

    results = {}
    elapsed, moved = run_ndr(sender, receiver, fmt, records)
    results["NDR"] = (elapsed, moved)
    elapsed, moved = run_codec(XDRCodec, fmt, receiver_fmt, records)
    results["XDR"] = (elapsed, moved)
    elapsed, moved = run_codec(XMLTextCodec, fmt, receiver_fmt, records)
    results["text XML"] = (elapsed, moved)

    ndr_time = results["NDR"][0]
    for name, (elapsed, moved) in results.items():
        rate = moved / elapsed / 1e6
        print(f"{name:<12} {elapsed:>9.3f}s {moved / 1e6:>8.1f}M "
              f"{rate:>8.1f} {elapsed / ndr_time:>6.1f}x")

    xml_expansion = results["text XML"][1] / results["NDR"][1]
    print(f"\ntext-XML expansion over NDR bytes: {xml_expansion:.1f}x "
          f"(paper cites 6-8x for typical mixed records)")


if __name__ == "__main__":
    main()
