#!/usr/bin/env python
"""The sharded metadata plane surviving a replica crash, end to end.

Boots a 3-shard x 2-replica metadata cluster in-process, quorum-writes
a batch of schemas through the shard router, then kills one replica
mid-stream: writes keep meeting quorum, reads fall over to the
surviving replica, and — after the replica rejoins on its old port —
anti-entropy converges every shard back to byte-identical state.

Run:  python examples/cluster_demo.py
"""

from repro.cluster import ClusterClient, ClusterMap, ClusterNode
from repro.metaserver import MetadataClient, MetadataServer, RetryPolicy
from repro.metaserver.catalog import MetadataCatalog
from repro.workloads import ASDOFF_B_SCHEMA

SHARDS, REPLICAS = 3, 2
DOCS = [f"/schemas/sensor{i:02d}.xsd" for i in range(12)]


def converged(nodes, addresses, cmap):
    """True when every replica of every shard reports the same digest."""
    for shard in cmap.shards:
        digests = {
            nodes[addresses.index(address)].store.digest(cmap, shard.name)
            for address in shard.replicas
        }
        if len(digests) != 1:
            return False
    return True


def main() -> None:
    # --- boot: 6 servers, one catalog + cluster node each -------------
    catalogs = [MetadataCatalog() for _ in range(SHARDS * REPLICAS)]
    servers = [MetadataServer(catalog=c).start() for c in catalogs]
    addresses = ["%s:%d" % s.address for s in servers]
    cmap = ClusterMap.grid(addresses, shards=SHARDS, replicas=REPLICAS)
    nodes = [
        ClusterNode(f"replica{i}", addresses[i], cmap, catalog=catalogs[i])
        for i in range(len(servers))
    ]
    for shard in cmap.shards:
        print(f"  shard {shard.name}: {', '.join(shard.replicas)}")

    client = ClusterClient(
        cmap,
        client=MetadataClient(
            ttl=0, retry=RetryPolicy(max_attempts=2, base_delay=0.05)
        ),
        # With R=2, a majority quorum (2) cannot absorb a replica loss;
        # W=1 trades that durability for availability during the kill.
        write_quorum=1,
        origin="demo",
    )
    print(f"\nwrite quorum: {client.write_quorum} of {REPLICAS}\n")

    try:
        # --- phase 1: publish against the healthy cluster -------------
        for path in DOCS[:6]:
            result = client.publish(path, ASDOFF_B_SCHEMA)
            print(f"  publish {path} -> {result.outcome} "
                  f"({result.acks}/{result.replicas} acks, shard {result.shard})")

        # --- phase 2: kill a replica mid-stream ------------------------
        victim = 0
        print(f"\n*** killing replica {addresses[victim]} ***\n")
        servers[victim].stop()
        for path in DOCS[6:]:
            result = client.publish(path, ASDOFF_B_SCHEMA)
            print(f"  publish {path} -> {result.outcome} "
                  f"({result.acks}/{result.replicas} acks)")

        # Reads still answer for every document — failover is routing.
        failures = sum(
            1 for path in DOCS
            if client.get_bytes(path).decode("utf-8") != ASDOFF_B_SCHEMA
        )
        stats = client.stats()["cluster"]
        print(f"\n  reads during outage: {len(DOCS) - failures}/{len(DOCS)} ok "
              f"({stats['replica_failovers']} failovers)")

        # --- phase 3: rejoin and heal via anti-entropy -----------------
        host, port = addresses[victim].split(":")
        servers[victim] = MetadataServer(
            host, int(port), catalog=catalogs[victim]
        ).start()
        print(f"\n*** replica {addresses[victim]} rejoined ***")
        print(f"  converged before anti-entropy: {converged(nodes, addresses, cmap)}")
        rounds = 0
        while not converged(nodes, addresses, cmap):
            for node in nodes:
                node.anti_entropy_round()
            rounds += 1
        print(f"  converged after {rounds} anti-entropy round(s)")
        print(f"\n  quorum writes: ok={stats['quorum_ok']} "
              f"partial={stats['quorum_partial']} failed={stats['quorum_failed']}")
    finally:
        for server in servers:
            server.stop()


if __name__ == "__main__":
    main()
