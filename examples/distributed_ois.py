#!/usr/bin/env python
"""The airline OIS, distributed: TCP broker, remote clients, and archival.

Extends ``airline_ois.py`` to the deployment shape of the paper's
Figure 3: the event backbone runs behind a TCP listener, capture points
and consumers are separate socket clients on different (simulated)
architectures, and an archiver consumer persists the flight stream to a
self-describing PBIO data file that any machine can replay later —
"transmitted in binary form over computer networks or written to data
files in a heterogeneous computing environment".

Run:  python examples/distributed_ois.py
"""

import tempfile
from pathlib import Path

from repro import IOContext, XML2Wire, get_architecture
from repro.events.remote import BrokerServer, RemoteBackboneClient
from repro.pbio.iofile import IOFileReader, IOFileWriter
from repro.workloads import ASDOFF_B_SCHEMA, AirlineWorkload

RECORDS = 8


def main() -> None:
    with BrokerServer() as broker:
        host, port = broker.address
        print(f"event backbone listening on {host}:{port}\n")

        # Capture point: a "SPARC" machine connected over TCP.
        capture_context = IOContext(get_architecture("sparc_32"))
        XML2Wire(capture_context).register_schema(ASDOFF_B_SCHEMA)
        capture = RemoteBackboneClient.connect(host, port, capture_context)
        publisher = capture.publisher("flights.departures")

        # Display point: an "x86-64" machine, also over TCP.
        display = RemoteBackboneClient.connect(
            host, port, IOContext(get_architecture("x86_64"))
        )
        display.subscribe("flights.*")

        # Archiver: an "alpha" machine persisting the stream to disk.
        archiver_context = IOContext(get_architecture("alpha"))
        archiver = RemoteBackboneClient.connect(host, port, archiver_context)
        archiver.subscribe("flights.*")
        archive_path = Path(tempfile.gettempdir()) / "flights.pbio"

        workload = AirlineWorkload(seed=1204)
        records = [workload.record_b() for _ in range(RECORDS)]
        for record in records:
            publisher.publish("ASDOffEvent", record)

        print("display point (x86_64) receives:")
        for _ in range(RECORDS):
            event = display.next_event(timeout=10)
            values = event.values
            print(f"  {values['arln']}{values['fltNum']:<5} "
                  f"{values['org']}->{values['dest']} etas={len(values['eta'])}")

        print(f"\narchiver (alpha) writes {archive_path} ...")
        # The archiver re-encodes with its own context; registering the
        # format locally via the same schema keeps the archive typed.
        XML2Wire(archiver_context).register_schema(ASDOFF_B_SCHEMA)
        with IOFileWriter(archive_path, archiver_context) as writer:
            for _ in range(RECORDS):
                event = archiver.next_event(timeout=10)
                writer.write("ASDOffEvent", event.values)
        print(f"  {writer.records_written} records archived "
              f"({archive_path.stat().st_size} bytes, self-describing)")

        # Years later, on yet another machine: replay the archive.
        replay_context = IOContext(get_architecture("powerpc_32"))
        with IOFileReader(archive_path, replay_context) as reader:
            replayed = [r.values for r in reader.records()]
        print(f"\nreplay on powerpc_32: {len(replayed)} records, "
              f"first flight {replayed[0]['arln']}{replayed[0]['fltNum']}")
        assert replayed == records
        print("archive replay matches the original stream: OK")

        capture.close()
        display.close()
        archiver.close()
        archive_path.unlink()


if __name__ == "__main__":
    main()
