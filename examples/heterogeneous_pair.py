#!/usr/bin/env python
"""Two endpoints over real TCP, with heterogeneous (simulated) machines.

A "SPARC" server streams mining events to an "x86-64" client over a
loopback socket using the full PBIO connection protocol: the first
message of each format carries metadata; everything after is a 16-byte
header plus the record in the sender's native layout.  The client's
converter is generated at run time from the received metadata.

Also demonstrates pull-based resolution: a second client connects late
on a fresh connection and asks for the format it never saw pushed.

Run:  python examples/heterogeneous_pair.py
"""

import threading

from repro import (
    IOContext,
    RecordConnection,
    SPARC_32,
    X86_64,
    XML2Wire,
    connect,
    listen,
)
from repro.workloads import MiningWorkload

RECORDS = 5


def server_main(listener, ready: threading.Event) -> None:
    context = IOContext(SPARC_32)
    XML2Wire(context).register_schema(MiningWorkload.schema)
    workload = MiningWorkload(seed=21)
    ready.set()

    channel = listener.accept(timeout=10)
    connection = RecordConnection(context, channel)
    for _ in range(RECORDS):
        connection.send("RuleDiscovery", workload.record())
    print(f"[server] sent {connection.data_messages} data messages "
          f"({connection.data_bytes} B) and {connection.metadata_messages} "
          f"metadata message ({connection.metadata_bytes} B)")
    connection.close()


def main() -> None:
    listener = listen()
    host, port = listener.address
    ready = threading.Event()
    server = threading.Thread(target=server_main, args=(listener, ready))
    server.start()
    ready.wait(timeout=10)

    client_context = IOContext(X86_64)
    connection = RecordConnection(client_context, connect(host, port))
    print(f"[client] connected to {host}:{port} as {client_context.arch.name}, "
          f"server is {SPARC_32.name}")
    for index in range(RECORDS):
        record = connection.recv(timeout=10)
        values = record.values
        print(f"[client] #{index + 1} rule {values['rule_id']}: "
              f"{values['antecedent']} => {values['consequent']} "
              f"(support {values['support']:.3f})")
    print(f"[client] generated converters: {client_context.converter_builds} "
          f"(one per wire format, reused for every record)")
    connection.close()
    server.join(timeout=10)
    listener.close()
    print("done: heterogeneous exchange over TCP OK")


if __name__ == "__main__":
    main()
